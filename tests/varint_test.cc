#include "src/util/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "src/nfa/output_nfa.h"
#include "src/nfa/serializer.h"

namespace dseq {
namespace {

TEST(VarintTest, RoundTripSmallValues) {
  for (uint64_t v = 0; v < 300; ++v) {
    std::string buf;
    PutVarint(&buf, v);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, RoundTripBoundaryValues) {
  const uint64_t values[] = {0,
                             127,
                             128,
                             16383,
                             16384,
                             (1ULL << 32) - 1,
                             1ULL << 32,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint(&buf, v);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &decoded)) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, SmallValuesUseOneByte) {
  std::string buf;
  PutVarint(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint(&buf, 1ULL << 40);
  buf.pop_back();
  size_t pos = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint(buf, &pos, &decoded));
}

TEST(VarintTest, MultipleValuesInSequence) {
  std::string buf;
  for (uint64_t v = 0; v < 100; ++v) PutVarint(&buf, v * v * 1000);
  size_t pos = 0;
  for (uint64_t v = 0; v < 100; ++v) {
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &decoded));
    EXPECT_EQ(decoded, v * v * 1000);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(ZigzagTest, RoundTrip) {
  const int64_t values[] = {0, 1, -1, 2, -2, 1000, -1000,
                            std::numeric_limits<int64_t>::max(),
                            std::numeric_limits<int64_t>::min()};
  for (int64_t v : values) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
}

TEST(ZigzagTest, SmallMagnitudesEncodeSmall) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
}

TEST(SequenceCodingTest, RoundTripEmpty) {
  std::string buf;
  PutSequence(&buf, {});
  size_t pos = 0;
  Sequence decoded;
  ASSERT_TRUE(GetSequence(buf, &pos, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(SequenceCodingTest, RoundTripRandom) {
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    Sequence seq;
    size_t len = rng() % 200;
    for (size_t i = 0; i < len; ++i) {
      seq.push_back(static_cast<ItemId>(rng() % 100'000 + 1));
    }
    std::string buf;
    PutSequence(&buf, seq);
    size_t pos = 0;
    Sequence decoded;
    ASSERT_TRUE(GetSequence(buf, &pos, &decoded));
    EXPECT_EQ(decoded, seq);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(SequenceCodingTest, DeltaCodingIsCompactForSortedRuns) {
  Sequence seq;
  for (ItemId w = 1000; w < 1100; ++w) seq.push_back(w);
  std::string buf;
  PutSequence(&buf, seq);
  // 100 deltas of 1 (zigzag 2) = 1 byte each + first item + length.
  EXPECT_LE(buf.size(), 110u);
}

TEST(SequenceCodingTest, TruncatedSequenceFails) {
  Sequence seq = {5, 10, 15};
  std::string buf;
  PutSequence(&buf, seq);
  buf.pop_back();
  size_t pos = 0;
  Sequence decoded;
  EXPECT_FALSE(GetSequence(buf, &pos, &decoded));
}

// --- adversarial / truncated shuffle records ------------------------------

TEST(VarintTest, OverlongEncodingFails) {
  // Eleven continuation bytes: more than any uint64 needs.
  std::string buf(11, static_cast<char>(0x80));
  size_t pos = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint(buf, &pos, &decoded));
}

TEST(VarintTest, TenBytePayloadOverflowFails) {
  // Ten bytes whose last contributes more than the top bit of a uint64.
  std::string buf(9, static_cast<char>(0xff));
  buf.push_back(0x02);
  size_t pos = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint(buf, &pos, &decoded));
}

TEST(SequenceCodingTest, AdversarialLengthPrefixFails) {
  // Claims 2^40 items but carries two bytes of payload: must fail fast
  // instead of reserving gigabytes.
  std::string buf;
  PutVarint(&buf, 1ULL << 40);
  buf.push_back(0x02);
  buf.push_back(0x02);
  size_t pos = 0;
  Sequence decoded;
  EXPECT_FALSE(GetSequence(buf, &pos, &decoded));
}

TEST(SequenceCodingTest, ItemBeyondItemIdRangeFails) {
  // A delta that pushes the running item above ItemId's range.
  std::string buf;
  PutVarint(&buf, 1);  // one item
  PutVarint(&buf, ZigzagEncode(1ULL << 40));
  size_t pos = 0;
  Sequence decoded;
  EXPECT_FALSE(GetSequence(buf, &pos, &decoded));
}

TEST(SequenceCodingTest, HugeDeltaSwingsFail) {
  // Alternating near-int64 deltas would overflow the running sum (UB)
  // without magnitude rejection.
  std::string buf;
  PutVarint(&buf, 3);
  PutVarint(&buf, ZigzagEncode(5));
  PutVarint(&buf, ZigzagEncode(std::numeric_limits<int64_t>::max()));
  PutVarint(&buf, ZigzagEncode(std::numeric_limits<int64_t>::min()));
  size_t pos = 0;
  Sequence decoded;
  EXPECT_FALSE(GetSequence(buf, &pos, &decoded));
}

OutputNfa MakeSerializableNfa() {
  OutputNfa nfa;
  nfa.AddLabelString({{3, 7}, {2}});
  nfa.AddLabelString({{3, 7}, {5}});
  nfa.AddLabelString({{4}});
  nfa.Minimize();
  return nfa;
}

TEST(NfaWireFormatTest, TruncatedRecordsThrowAtEveryPrefix) {
  // Feed every strict prefix of a valid shuffle record through the
  // deserializer: each must throw NfaParseError, never crash or hang.
  std::string bytes = SerializeNfa(MakeSerializableNfa());
  ASSERT_GT(bytes.size(), 2u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(DeserializeNfa(bytes.substr(0, len)), NfaParseError)
        << "prefix length " << len;
  }
  // The full record still parses.
  OutputNfa nfa = DeserializeNfa(bytes);
  EXPECT_EQ(SerializeNfa(nfa), bytes);
}

TEST(NfaWireFormatTest, WrappingLabelDeltaThrows) {
  // A second delta near 2^64 would wrap the running item back under
  // ItemId::max if the bound were checked after the addition; the label
  // {5, wrapped-to-1} must be rejected, not accepted as non-ascending.
  std::string bytes;
  PutVarint(&bytes, 1);   // one edge
  bytes.push_back(0x00);  // header: implicit source, fresh target
  PutVarint(&bytes, 2);   // label with two items
  PutVarint(&bytes, 5);
  PutVarint(&bytes, std::numeric_limits<uint64_t>::max() - 3);
  EXPECT_THROW(DeserializeNfa(bytes), NfaParseError);
}

TEST(NfaWireFormatTest, AdversarialEdgeCountThrows) {
  std::string bytes;
  PutVarint(&bytes, 1ULL << 50);  // edge count far beyond the input size
  bytes.push_back(0x00);
  EXPECT_THROW(DeserializeNfa(bytes), NfaParseError);
}

TEST(NfaWireFormatTest, CorruptedLabelBytesThrowOrFailCleanly) {
  // Flip every byte of a valid record through all 255 alternatives; the
  // deserializer must either parse (possibly to a different NFA) or throw
  // NfaParseError — it must never exhibit UB or unbounded allocation.
  std::string bytes = SerializeNfa(MakeSerializableNfa());
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int delta = 1; delta < 256; ++delta) {
      std::string corrupted = bytes;
      corrupted[i] = static_cast<char>(
          (static_cast<uint8_t>(corrupted[i]) + delta) & 0xff);
      try {
        OutputNfa nfa = DeserializeNfa(corrupted);
        EXPECT_LE(nfa.num_edges(), corrupted.size());
      } catch (const NfaParseError&) {
        // Expected for most corruptions.
      }
    }
  }
}

}  // namespace
}  // namespace dseq
