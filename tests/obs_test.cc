// Observability layer tests: the trace clock, span emission and flushing,
// the wire snapshot codec, the Chrome trace-event JSON export, the metrics
// registry (log2 histogram math, JSON, cross-process delta merge), and the
// fixed-schema stats renderers that back `dseq_cli --stats`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dataflow/engine.h"
#include "src/obs/metrics.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"

namespace dseq {
namespace {

// Every test runs with tracing enabled against freshly reset state; the
// trace sink and registry are process-global, so tests must not assume a
// particular *absolute* count of anything other spans could bump.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetTraceForTest();
    obs::ResetMetricsForTest();
    obs::SetEnabled(true);
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::ResetTraceForTest();
    obs::ResetMetricsForTest();
  }
};

// --- Clock ------------------------------------------------------------------

TEST_F(ObsTest, ClockIsMonotonicAndConsistentAcrossAccessors) {
  auto tp = obs::Now();
  int64_t a = obs::NowNs();
  int64_t b = obs::NowNs();
  EXPECT_LE(a, b);
  // ToNs(tp) and NowNs() read the same clock: a point taken before must not
  // land after.
  EXPECT_LE(obs::ToNs(tp), a);
  EXPECT_GE(obs::SecondsSince(tp), 0.0);
}

// --- Span emission and flushing ---------------------------------------------

TEST_F(ObsTest, ScopedSpanLandsInTheSnapshotWithStamps) {
  obs::SetCurrentRound(3);
  {
    DSEQ_TRACE_SPAN("test", "scoped_span");
  }
  std::vector<obs::TraceEvent> events = obs::SnapshotTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "scoped_span");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_EQ(events[0].round, 3);
  EXPECT_EQ(events[0].process_ordinal, -1);  // coordinator default
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_GT(events[0].start_ns, 0);
}

TEST_F(ObsTest, DisabledEmissionRecordsNothing) {
  obs::SetEnabled(false);
  {
    DSEQ_TRACE_SPAN("test", "invisible");
  }
  obs::EmitSpan("test", "also_invisible", 1, 2);
  EXPECT_TRUE(obs::SnapshotTrace().empty());
}

TEST_F(ObsTest, EachSpanIsCollectedExactlyOnceAcrossFlushes) {
  obs::EmitSpan("test", "first", 10, 20);
  EXPECT_EQ(obs::TakeTrace().size(), 1u);
  // The span was moved out; a second flush must not resurrect it.
  EXPECT_TRUE(obs::TakeTrace().empty());
  obs::EmitSpan("test", "second", 30, 40);
  std::vector<obs::TraceEvent> events = obs::TakeTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "second");
}

TEST_F(ObsTest, RetrospectiveSpanClampsInvertedIntervals) {
  obs::EmitSpan("test", "inverted", 100, 50);
  std::vector<obs::TraceEvent> events = obs::SnapshotTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].dur_ns, 0);
}

// --- Wire snapshot codec ----------------------------------------------------

TEST_F(ObsTest, WireSnapshotRoundTripsSpansAndMetricDeltas) {
  obs::SetCurrentRound(2);
  obs::EmitSpan("worker", "map_task", 1000, 5000);
  obs::GetCounter("test.round_trip").Add(7);
  obs::GetHistogram("test.rt_bytes").Observe(300);
  std::string payload = obs::EncodeWireSnapshot();
  // Encoding drained this process's spans and shipped the metric deltas;
  // zero the registry so the ingest below is what restores it.
  EXPECT_TRUE(obs::SnapshotTrace().empty());
  obs::ResetMetricsForTest();

  ASSERT_TRUE(obs::IngestWireSnapshot(payload, /*fallback=*/4));
  std::vector<obs::TraceEvent> events = obs::SnapshotTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "map_task");
  EXPECT_EQ(events[0].category, "worker");
  EXPECT_EQ(events[0].start_ns, 1000);
  EXPECT_EQ(events[0].dur_ns, 4000);
  EXPECT_EQ(events[0].round, 2);
  // The span carried ordinal -1 (emitted by a coordinator-ordinal process),
  // so ingest stamps the fallback — the frame's worker slot.
  EXPECT_EQ(events[0].process_ordinal, 4);
  EXPECT_EQ(obs::GetCounter("test.round_trip").Value(), 7u);
  EXPECT_EQ(obs::GetHistogram("test.rt_bytes").TotalCount(), 1u);
  EXPECT_EQ(obs::GetHistogram("test.rt_bytes").Sum(), 300u);
}

TEST_F(ObsTest, RepeatedSnapshotsShipOnlyIncrements) {
  obs::GetCounter("test.inc").Add(5);
  std::string first = obs::EncodeWireSnapshot();
  obs::GetCounter("test.inc").Add(2);
  std::string second = obs::EncodeWireSnapshot();

  obs::ResetMetricsForTest();
  ASSERT_TRUE(obs::IngestWireSnapshot(first, 0));
  ASSERT_TRUE(obs::IngestWireSnapshot(second, 0));
  // 5 then +2, not 5 then 7: the second snapshot is a delta.
  EXPECT_EQ(obs::GetCounter("test.inc").Value(), 7u);
}

TEST_F(ObsTest, IngestedDeltasAreNotReShipped) {
  obs::GetCounter("test.noecho").Add(3);
  std::string payload = obs::EncodeWireSnapshot();
  obs::ResetMetricsForTest();
  ASSERT_TRUE(obs::IngestWireSnapshot(payload, 0));
  // The coordinator's own next snapshot must not echo the worker's data
  // back — foreign deltas count as already shipped.
  std::string next = obs::EncodeWireSnapshot();
  obs::ResetMetricsForTest();
  ASSERT_TRUE(obs::IngestWireSnapshot(next, 0));
  EXPECT_EQ(obs::GetCounter("test.noecho").Value(), 0u);
}

TEST_F(ObsTest, MalformedWirePayloadIsRejected) {
  EXPECT_FALSE(obs::IngestWireSnapshot("", 0));
  EXPECT_FALSE(obs::IngestWireSnapshot("\x7f", 0));  // wrong version
  obs::EmitSpan("test", "span", 1, 2);
  std::string payload = obs::EncodeWireSnapshot();
  EXPECT_FALSE(
      obs::IngestWireSnapshot(payload.substr(0, payload.size() / 2), 0));
}

// --- Chrome trace-event JSON ------------------------------------------------

TEST_F(ObsTest, ChromeTraceJsonCarriesTheSchemaFields) {
  obs::SetCurrentRound(1);
  obs::EmitSpan("engine", "map_shard", 2'500, 7'500);
  std::string json = obs::ChromeTraceJson();
  // Envelope + coordinator metadata.
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"coordinator\""), std::string::npos);
  // The span: microsecond timestamps with the nanosecond remainder kept as
  // a fractional part, coordinator pid 0.
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"map_shard\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"round\":1}"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceJsonMapsWorkerOrdinalsToDistinctPids) {
  obs::SetProcessOrdinal(1);
  obs::EmitSpan("worker", "map_task", 1000, 2000);
  std::string worker1 = obs::EncodeWireSnapshot();
  obs::SetProcessOrdinal(0);
  obs::EmitSpan("worker", "map_task", 1500, 2500);
  std::string worker0 = obs::EncodeWireSnapshot();
  obs::SetProcessOrdinal(-1);
  ASSERT_TRUE(obs::IngestWireSnapshot(worker0, 0));
  ASSERT_TRUE(obs::IngestWireSnapshot(worker1, 1));
  std::string json = obs::ChromeTraceJson();
  // pid k+1 = worker ordinal k, each with its own metadata record.
  EXPECT_NE(json.find("\"args\":{\"name\":\"worker 0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"worker 1\"}"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1,"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2,"), std::string::npos);
}

// --- Metrics registry -------------------------------------------------------

TEST(HistogramTest, BucketIndexIsLog2WithZeroAndSaturation) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1);   // [1,2)
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2);   // [2,4)
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3);   // [4,8)
  EXPECT_EQ(obs::Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(obs::Histogram::BucketIndex(1024), 11);
  // The top bucket saturates.
  EXPECT_EQ(obs::Histogram::BucketIndex(~uint64_t{0}),
            obs::Histogram::kBuckets - 1);
}

TEST_F(ObsTest, RegistryJsonListsEveryKindWithSparseBuckets) {
  obs::GetCounter("test.json_counter").Add(11);
  obs::GetGauge("test.json_gauge").Set(-4);
  obs::Histogram& h = obs::GetHistogram("test.json_hist");
  h.Observe(0);
  h.Observe(5);
  h.Observe(6);
  std::string json = obs::RegistryJson();
  EXPECT_NE(json.find("\"test.json_counter\":11"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":-4"), std::string::npos);
  // Bucket keys are exclusive upper bounds: zeros under "0", [4,8) under
  // "8"; untouched buckets are omitted.
  EXPECT_NE(json.find("\"test.json_hist\":{\"count\":3,\"sum\":11,"
                      "\"buckets\":{\"0\":1,\"8\":2}}"),
            std::string::npos);
}

// --- Stats renderers --------------------------------------------------------

DataflowMetrics SampleMetrics() {
  DataflowMetrics m;
  m.map_seconds = 1.5;
  m.reduce_seconds = 0.5;
  m.shuffle_bytes = 4096;
  m.shuffle_records = 100;
  m.reducer_bytes = {1024, 3072};
  m.spill_files = 2;
  m.spill_bytes_written = 2048;
  m.spill_merge_passes = 1;
  return m;
}

TEST(StatsRenderTest, LocalAndProcRenderTheSameFieldSet) {
  DataflowMetrics m = SampleMetrics();
  std::string local = obs::RenderStats("run", m, /*proc_backend=*/false);
  std::string proc = obs::RenderStats("run", m, /*proc_backend=*/true);
  // The schema is fixed: both backends render the same three lines with
  // the same field labels, differing only in the proc line's values.
  auto lines = [](const std::string& s) {
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < s.size()) {
      size_t nl = s.find('\n', pos);
      if (nl == std::string::npos) nl = s.size();
      out.push_back(s.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return out;
  };
  std::vector<std::string> local_lines = lines(local);
  std::vector<std::string> proc_lines = lines(proc);
  ASSERT_EQ(local_lines.size(), 3u);
  ASSERT_EQ(proc_lines.size(), 3u);
  // Run and spill lines are backend-independent.
  EXPECT_EQ(local_lines[0], proc_lines[0]);
  EXPECT_EQ(local_lines[1], proc_lines[1]);
  // The proc line never vanishes — it renders an explicit marker locally.
  EXPECT_NE(local_lines[2].find("run proc: n/a (local backend)"),
            std::string::npos);
  EXPECT_NE(proc_lines[2].find("run proc:"), std::string::npos);
  EXPECT_NE(proc_lines[2].find("task attempts"), std::string::npos);
}

TEST(StatsRenderTest, ChainedReportRendersPerRoundAndAggregateBlocks) {
  DataflowMetrics m = SampleMetrics();
  std::string report = obs::RenderChainedStats(
      {m, m}, m, /*input_storage_reads=*/10, /*input_cache_hits=*/5,
      /*proc_backend=*/false);
  EXPECT_NE(report.find("round 1:"), std::string::npos);
  EXPECT_NE(report.find("round 2:"), std::string::npos);
  EXPECT_NE(report.find("total:"), std::string::npos);
  EXPECT_NE(
      report.find("input reads: 10 from storage, 5 from the round-1 cache"),
      std::string::npos);
}

TEST_F(ObsTest, MetricsReportJsonEmbedsDataflowAndRegistry) {
  DataflowMetrics m = SampleMetrics();
  obs::GetCounter("test.report").Add(1);
  std::string with = obs::MetricsReportJson(&m, /*proc_backend=*/true);
  EXPECT_NE(with.find("\"dataflow\":{"), std::string::npos);
  EXPECT_NE(with.find("\"backend\":\"proc\""), std::string::npos);
  EXPECT_NE(with.find("\"registry\":{"), std::string::npos);
  EXPECT_NE(with.find("\"test.report\":1"), std::string::npos);
  // Algorithms without dataflow metrics report an explicit null, not a
  // missing key.
  std::string without = obs::MetricsReportJson(nullptr, false);
  EXPECT_NE(without.find("\"dataflow\":null"), std::string::npos);
}

}  // namespace
}  // namespace dseq
