#include "src/core/desq_dfs.h"

#include <gtest/gtest.h>

#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

TEST(DesqDfsTest, RunningExampleGolden) {
  // Paper Sec. II: for πex and σ=2, the frequent subsequences are a1a1b and
  // a1Ab with frequency 2 and a1b with frequency 3.
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DesqDfsOptions options;
  options.sigma = 2;
  MiningResult result = MineDesqDfs(db.sequences, fst, db.dict, options);

  ASSERT_EQ(result.size(), 3u) << testing::Format(result, db.dict);
  MiningResult expected = {
      {db.ParseSequence("a1 b"), 3},
      {db.ParseSequence("a1 a1 b"), 2},
      {db.ParseSequence("a1 A b"), 2},
  };
  Canonicalize(&expected);
  EXPECT_EQ(result, expected) << testing::Format(result, db.dict);
}

TEST(DesqDfsTest, SigmaOneFindsAllCandidates) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DesqDfsOptions options;
  options.sigma = 1;
  MiningResult result = MineDesqDfs(db.sequences, fst, db.dict, options);
  MiningResult expected =
      testing::BruteForceMine(db.sequences, fst, db.dict, 1);
  EXPECT_EQ(result, expected);
}

TEST(DesqDfsTest, HighSigmaYieldsNothing) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DesqDfsOptions options;
  options.sigma = 10;
  EXPECT_TRUE(MineDesqDfs(db.sequences, fst, db.dict, options).empty());
}

TEST(DesqDfsTest, PivotRestrictedMiningOnlyYieldsPivotSequences) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  ItemId a1 = db.dict.ItemByName("a1");

  DesqDfsOptions options;
  options.sigma = 2;
  options.pivot = a1;
  MiningResult result = MineDesqDfs(db.sequences, fst, db.dict, options);
  for (const PatternCount& pc : result) {
    EXPECT_EQ(PivotItem(pc.pattern), a1)
        << testing::Format({pc}, db.dict);
  }
  // All three frequent sequences have pivot a1.
  EXPECT_EQ(result.size(), 3u);
}

TEST(DesqDfsTest, PivotPartitionsUnionToFullResult) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DesqDfsOptions full_options;
  full_options.sigma = 2;
  MiningResult full = MineDesqDfs(db.sequences, fst, db.dict, full_options);

  MiningResult stitched;
  for (ItemId k = 1; k <= db.dict.size(); ++k) {
    DesqDfsOptions options;
    options.sigma = 2;
    options.pivot = k;
    MiningResult part = MineDesqDfs(db.sequences, fst, db.dict, options);
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  Canonicalize(&stitched);
  EXPECT_EQ(stitched, full);
}

TEST(DesqDfsTest, EarlyStoppingDoesNotChangeResults) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  for (ItemId k = 1; k <= db.dict.size(); ++k) {
    DesqDfsOptions with;
    with.sigma = 2;
    with.pivot = k;
    with.early_stop = true;
    DesqDfsOptions without = with;
    without.early_stop = false;
    EXPECT_EQ(MineDesqDfs(db.sequences, fst, db.dict, with),
              MineDesqDfs(db.sequences, fst, db.dict, without))
        << "pivot " << k;
  }
}

TEST(DesqDfsTest, MemoryBudgetThrows) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DesqDfsOptions options;
  options.sigma = 2;
  options.max_total_grid_edges = 1;
  EXPECT_THROW(MineDesqDfs(db.sequences, fst, db.dict, options),
               MiningBudgetError);
}

TEST(DesqDfsTest, EmptyDatabase) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DesqDfsOptions options;
  options.sigma = 1;
  EXPECT_TRUE(MineDesqDfs({}, fst, db.dict, options).empty());
}

// Property: DESQ-DFS == brute force across random databases, patterns, and
// thresholds.
class DesqDfsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(DesqDfsPropertyTest, MatchesBruteForce) {
  auto [seed, pattern] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 100, 8, 40, 8);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {1, 2, 3, 5}) {
    DesqDfsOptions options;
    options.sigma = sigma;
    MiningResult actual = MineDesqDfs(db.sequences, fst, db.dict, options);
    MiningResult expected =
        testing::BruteForceMine(db.sequences, fst, db.dict, sigma);
    EXPECT_EQ(actual, expected)
        << "pattern=" << pattern << " sigma=" << sigma << "\nactual:\n"
        << testing::Format(actual, db.dict) << "expected:\n"
        << testing::Format(expected, db.dict);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedDesqDfs, DesqDfsPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::ValuesIn(testing::PropertyPatterns())));

}  // namespace
}  // namespace dseq
