#include "src/dist/partition_stats.h"

#include <gtest/gtest.h>

#include "src/dict/sequence.h"
#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

TEST(PartitionStatsTest, RunningExamplePartitions) {
  // Paper Fig. 3 (σ=2): partitions P_a1 (T1, T2, T5) and P_c (T1).
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  std::vector<PartitionStats> stats =
      ComputePartitionStats(db.sequences, fst, db.dict, 2);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].pivot, db.dict.ItemByName("a1"));
  EXPECT_EQ(stats[0].num_sequences, 3u);
  EXPECT_EQ(stats[1].pivot, db.dict.ItemByName("c"));
  EXPECT_EQ(stats[1].num_sequences, 1u);
  EXPECT_GT(stats[0].total_bytes, 0u);
}

TEST(PartitionStatsTest, ParallelMatchesSerial) {
  SequenceDatabase db = testing::RandomDatabase(31, 8, 80, 8);
  Fst fst = CompileFst(".*(.^)[.{0,1}(.^)]{1,2}.*", db.dict);
  auto serial = ComputePartitionStats(db.sequences, fst, db.dict, 2, 1);
  testing::ForEachWorkerCount([&](int workers) {
    auto parallel =
        ComputePartitionStats(db.sequences, fst, db.dict, 2, workers);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].pivot, parallel[i].pivot);
      EXPECT_EQ(serial[i].num_sequences, parallel[i].num_sequences);
      EXPECT_EQ(serial[i].total_bytes, parallel[i].total_bytes);
    }
  });
}

TEST(PartitionStatsTest, SummaryMeasures) {
  std::vector<PartitionStats> stats = {
      {1, 10, 100},
      {2, 10, 100},
      {3, 10, 200},
  };
  BalanceSummary summary = SummarizeBalance(stats);
  EXPECT_EQ(summary.num_partitions, 3u);
  EXPECT_EQ(summary.total_bytes, 400u);
  EXPECT_NEAR(summary.max_to_mean_bytes, 200.0 / (400.0 / 3), 1e-9);
  EXPECT_NEAR(summary.largest_share, 0.5, 1e-9);
}

TEST(PartitionStatsTest, EmptySummary) {
  BalanceSummary summary = SummarizeBalance({});
  EXPECT_EQ(summary.num_partitions, 0u);
  EXPECT_EQ(summary.total_bytes, 0u);
  EXPECT_EQ(summary.num_reducers, 0);
}

TEST(PartitionStatsTest, ReducerViewCountsEmptyReducers) {
  // Three equal pivots on eight reducers: the per-pivot view says perfectly
  // balanced (max/mean 1.0), but at least five reducers are idle — the
  // per-reducer view must say so instead of understating the imbalance.
  std::vector<PartitionStats> stats = {
      {1, 10, 100},
      {2, 10, 100},
      {3, 10, 100},
  };
  BalanceSummary summary = SummarizeBalance(stats, 8);
  EXPECT_NEAR(summary.max_to_mean_bytes, 1.0, 1e-9);
  EXPECT_EQ(summary.num_reducers, 8);
  // Even with zero hash collisions the largest reducer holds 100 of 300
  // bytes against a mean of 300/8.
  EXPECT_GE(summary.max_to_mean_reducer_bytes, 8.0 / 3 - 1e-9);
  EXPECT_GE(summary.largest_reducer_share, 1.0 / 3 - 1e-9);
  EXPECT_GE(summary.max_reducer_bytes, 100u);
}

TEST(PartitionStatsTest, SummarizeReducerBytesMeasures) {
  BalanceSummary summary = SummarizeReducerBytes({0, 0, 300, 100});
  EXPECT_EQ(summary.num_reducers, 4);
  EXPECT_EQ(summary.total_bytes, 400u);
  EXPECT_EQ(summary.max_reducer_bytes, 300u);
  EXPECT_NEAR(summary.max_to_mean_reducer_bytes, 3.0, 1e-9);
  EXPECT_NEAR(summary.largest_reducer_share, 0.75, 1e-9);

  BalanceSummary empty = SummarizeReducerBytes({});
  EXPECT_EQ(empty.num_reducers, 0);
  EXPECT_EQ(empty.total_bytes, 0u);

  BalanceSummary idle = SummarizeReducerBytes({0, 0});
  EXPECT_EQ(idle.num_reducers, 2);
  EXPECT_EQ(idle.max_to_mean_reducer_bytes, 0.0);
}

TEST(PartitionStatsTest, MoreWorkersThanSequencesRegression) {
  // |db| = 3 with 8 workers: five shards are empty; stats must match the
  // serial run exactly (and not crash or drop sequences).
  SequenceDatabase db = MakeRunningExample();
  db.sequences.resize(3);
  Fst fst = CompileFst(kPatternEx, db.dict);
  auto serial = ComputePartitionStats(db.sequences, fst, db.dict, 1, 1);
  auto wide = ComputePartitionStats(db.sequences, fst, db.dict, 1, 8);
  ASSERT_EQ(serial.size(), wide.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].pivot, wide[i].pivot);
    EXPECT_EQ(serial[i].num_sequences, wide[i].num_sequences);
    EXPECT_EQ(serial[i].total_bytes, wide[i].total_bytes);
  }
  // Degenerate sizes stay well-defined.
  EXPECT_TRUE(
      ComputePartitionStats({}, fst, db.dict, 1, 8).empty());
}

TEST(PartitionStatsTest, StatsMatchEngineShuffleAccounting) {
  // PartitionStats::total_bytes uses the engine's byte accounting, so the
  // measured stats must sum to exactly what an (uncombined) D-SEQ run
  // reports as shuffle_bytes — the invariant that makes plans projected
  // from stats match the loads the run then measures.
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  std::vector<PartitionStats> stats =
      ComputePartitionStats(db.sequences, fst, db.dict, 2);
  uint64_t stats_bytes = 0;
  for (const PartitionStats& p : stats) stats_bytes += p.total_bytes;

  DSeqOptions options;
  options.sigma = 2;
  DistributedResult run = MineDSeq(db.sequences, fst, db.dict, options);
  EXPECT_EQ(stats_bytes, run.metrics.shuffle_bytes);
}

TEST(PartitionStatsTest, FrequentItemsReceiveLittleData) {
  // The paper's balance argument: partitions of frequent items (small fids)
  // should not dominate the shuffle volume.
  SequenceDatabase db = testing::RandomDatabase(33, 10, 300, 10);
  Fst fst = CompileFst(".*(.^)[.{0,1}(.^)]{1,2}.*", db.dict);
  std::vector<PartitionStats> stats =
      ComputePartitionStats(db.sequences, fst, db.dict, 2);
  ASSERT_GT(stats.size(), 2u);
  BalanceSummary summary = SummarizeBalance(stats);
  // No partition holds everything.
  EXPECT_LT(summary.largest_share, 0.9);
}

}  // namespace
}  // namespace dseq
