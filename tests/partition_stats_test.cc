#include "src/dist/partition_stats.h"

#include <gtest/gtest.h>

#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

TEST(PartitionStatsTest, RunningExamplePartitions) {
  // Paper Fig. 3 (σ=2): partitions P_a1 (T1, T2, T5) and P_c (T1).
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  std::vector<PartitionStats> stats =
      ComputePartitionStats(db.sequences, fst, db.dict, 2);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].pivot, db.dict.ItemByName("a1"));
  EXPECT_EQ(stats[0].num_sequences, 3u);
  EXPECT_EQ(stats[1].pivot, db.dict.ItemByName("c"));
  EXPECT_EQ(stats[1].num_sequences, 1u);
  EXPECT_GT(stats[0].total_bytes, 0u);
}

TEST(PartitionStatsTest, ParallelMatchesSerial) {
  SequenceDatabase db = testing::RandomDatabase(31, 8, 80, 8);
  Fst fst = CompileFst(".*(.^)[.{0,1}(.^)]{1,2}.*", db.dict);
  auto serial = ComputePartitionStats(db.sequences, fst, db.dict, 2, 1);
  testing::ForEachWorkerCount([&](int workers) {
    auto parallel =
        ComputePartitionStats(db.sequences, fst, db.dict, 2, workers);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].pivot, parallel[i].pivot);
      EXPECT_EQ(serial[i].num_sequences, parallel[i].num_sequences);
      EXPECT_EQ(serial[i].total_bytes, parallel[i].total_bytes);
    }
  });
}

TEST(PartitionStatsTest, SummaryMeasures) {
  std::vector<PartitionStats> stats = {
      {1, 10, 100},
      {2, 10, 100},
      {3, 10, 200},
  };
  BalanceSummary summary = SummarizeBalance(stats);
  EXPECT_EQ(summary.num_partitions, 3u);
  EXPECT_EQ(summary.total_bytes, 400u);
  EXPECT_NEAR(summary.max_to_mean_bytes, 200.0 / (400.0 / 3), 1e-9);
  EXPECT_NEAR(summary.largest_share, 0.5, 1e-9);
}

TEST(PartitionStatsTest, EmptySummary) {
  BalanceSummary summary = SummarizeBalance({});
  EXPECT_EQ(summary.num_partitions, 0u);
  EXPECT_EQ(summary.total_bytes, 0u);
}

TEST(PartitionStatsTest, FrequentItemsReceiveLittleData) {
  // The paper's balance argument: partitions of frequent items (small fids)
  // should not dominate the shuffle volume.
  SequenceDatabase db = testing::RandomDatabase(33, 10, 300, 10);
  Fst fst = CompileFst(".*(.^)[.{0,1}(.^)]{1,2}.*", db.dict);
  std::vector<PartitionStats> stats =
      ComputePartitionStats(db.sequences, fst, db.dict, 2);
  ASSERT_GT(stats.size(), 2u);
  BalanceSummary summary = SummarizeBalance(stats);
  // No partition holds everything.
  EXPECT_LT(summary.largest_share, 0.9);
}

}  // namespace
}  // namespace dseq
