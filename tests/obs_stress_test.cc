// Concurrency stress for the span buffers: many threads emit spans while
// the main thread flushes concurrently. The lock-free publish contract
// (release-store of the count, acquire-load by the flusher) must hold —
// every span is collected exactly once, fully written, across however many
// flushes raced with the emitters. Runs in the engine group so the TSan CI
// job exercises the emit/flush race directly.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace dseq {
namespace {

TEST(ObsStressTest, ConcurrentEmissionAndFlushLosesNothing) {
  obs::ResetTraceForTest();
  obs::ResetMetricsForTest();
  obs::SetEnabled(true);

  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 20'000;
  std::atomic<int> done{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &done] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        // Fixed start/end so a torn read is detectable as a wrong duration.
        obs::EmitSpan("stress", "unit_span", 1'000, 2'000);
        if (i % 64 == 0) {
          DSEQ_TRACE_SPAN("stress", "scoped_span");
        }
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }

  // Flush concurrently with the emitters; every drained span must already
  // be fully written.
  size_t collected_units = 0;
  size_t collected_scoped = 0;
  auto account = [&](const std::vector<obs::TraceEvent>& events) {
    for (const obs::TraceEvent& ev : events) {
      EXPECT_EQ(ev.category, "stress");
      if (ev.name == "unit_span") {
        EXPECT_EQ(ev.start_ns, 1'000);
        EXPECT_EQ(ev.dur_ns, 1'000);
        ++collected_units;
      } else {
        EXPECT_EQ(ev.name, "scoped_span");
        ++collected_scoped;
      }
    }
  };
  while (done.load(std::memory_order_acquire) < kThreads) {
    account(obs::TakeTrace());
  }
  for (std::thread& t : threads) t.join();
  account(obs::TakeTrace());

  EXPECT_EQ(collected_units,
            static_cast<size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(collected_scoped,
            static_cast<size_t>(kThreads) * (kSpansPerThread / 64 + 1));
  // Nothing left behind, nothing collected twice.
  EXPECT_TRUE(obs::TakeTrace().empty());

  obs::SetEnabled(false);
  obs::ResetTraceForTest();
}

TEST(ObsStressTest, ConcurrentMetricObservationSumsExactly) {
  obs::ResetMetricsForTest();
  obs::SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 50'000;
  obs::Histogram& h = obs::GetHistogram("stress.observed");
  obs::Counter& c = obs::GetCounter("stress.count");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &c] {
      for (int i = 0; i < kObsPerThread; ++i) {
        h.Observe(3);
        c.Add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t expected =
      static_cast<uint64_t>(kThreads) * kObsPerThread;
  EXPECT_EQ(c.Value(), expected);
  EXPECT_EQ(h.TotalCount(), expected);
  EXPECT_EQ(h.Sum(), expected * 3);
  obs::SetEnabled(false);
  obs::ResetMetricsForTest();
}

}  // namespace
}  // namespace dseq
