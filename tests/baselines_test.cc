#include <gtest/gtest.h>

#include "src/baselines/gap_miner.h"
#include "src/baselines/prefix_span.h"
#include "src/core/desq_dfs.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

// The T2/T3 constraints as pattern expressions (paper Tab. III, with the
// enclosing .* that DESQ's whole-sequence match semantics requires).
std::string T2Pattern(uint32_t gamma, uint32_t lambda) {
  return ".*(.)[.{0," + std::to_string(gamma) + "}(.)]{1," +
         std::to_string(lambda - 1) + "}.*";
}
std::string T3Pattern(uint32_t gamma, uint32_t lambda) {
  return ".*(.^)[.{0," + std::to_string(gamma) + "}(.^)]{1," +
         std::to_string(lambda - 1) + "}.*";
}
std::string T1Pattern(uint32_t lambda) {
  return ".*(.)[.*(.)]{0," + std::to_string(lambda - 1) + "}.*";
}

TEST(GapMinerTest, SimpleNoHierarchy) {
  DictionaryBuilder builder;
  ItemId a = builder.AddItem("a");
  ItemId b = builder.AddItem("b");
  builder.AddItem("c");
  SequenceDatabase db;
  db.dict = builder.Build();
  db.sequences = {{a, b}, {a, b}, {b, a}};
  db.Recode();

  GapMinerOptions options;
  options.sigma = 2;
  options.gamma = 0;
  options.lambda = 2;
  options.use_hierarchy = false;
  DistributedResult result =
      MineGapConstrained(db.sequences, db.dict, options);
  // "a b" occurs in sequences 0 and 1; "b a" only in sequence 2.
  ASSERT_EQ(result.patterns.size(), 1u);
  EXPECT_EQ(db.FormatSequence(result.patterns[0].pattern), "a b");
  EXPECT_EQ(result.patterns[0].frequency, 2u);
}

TEST(GapMinerTest, GapLimitsRespected) {
  DictionaryBuilder builder;
  ItemId a = builder.AddItem("a");
  ItemId b = builder.AddItem("b");
  ItemId x = builder.AddItem("x");
  SequenceDatabase db;
  db.dict = builder.Build();
  db.sequences = {{a, x, x, b}, {a, x, x, b}};
  db.Recode();

  GapMinerOptions tight;
  tight.sigma = 2;
  tight.gamma = 1;
  tight.lambda = 2;
  tight.use_hierarchy = false;
  DistributedResult r1 = MineGapConstrained(db.sequences, db.dict, tight);
  // a..b has two items between: not reachable with gamma=1.
  for (const auto& pc : r1.patterns) {
    EXPECT_NE(db.FormatSequence(pc.pattern), "a b");
  }

  GapMinerOptions loose = tight;
  loose.gamma = 2;
  DistributedResult r2 = MineGapConstrained(db.sequences, db.dict, loose);
  bool found = false;
  for (const auto& pc : r2.patterns) {
    if (db.FormatSequence(pc.pattern) == "a b") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GapMinerTest, HierarchyGeneralizes) {
  SequenceDatabase db = MakeRunningExample();
  GapMinerOptions options;
  options.sigma = 2;
  options.gamma = 0;
  options.lambda = 2;
  options.use_hierarchy = true;
  DistributedResult result =
      MineGapConstrained(db.sequences, db.dict, options);
  // "A b" generalizes a1 b (T5) and a2... a2 b is not adjacent in T4 (a2 d
  // b), but "A b" from T5 (a1 b adjacent? T5 = a1 a1 b: yes) and "d b" from
  // T4/T1? T1 ends c b. Check a couple of expected patterns.
  bool found_Ab = false;
  for (const auto& pc : result.patterns) {
    if (db.FormatSequence(pc.pattern) == "A b") found_Ab = true;
  }
  // A b: T5 (a1 b adjacent) and T2 (a1 b? T2 = ..a1 e b: gap 1, not 0).
  // So A b is only in T5 at gamma=0 => infrequent at sigma=2.
  EXPECT_FALSE(found_Ab);

  options.gamma = 1;
  result = MineGapConstrained(db.sequences, db.dict, options);
  for (const auto& pc : result.patterns) {
    if (db.FormatSequence(pc.pattern) == "A b") found_Ab = true;
  }
  EXPECT_TRUE(found_Ab);  // now T2 and T5 support it
}

class GapMinerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(GapMinerPropertyTest, MatchesDesqDfsOnGapConstraints) {
  auto [seed, gamma, lambda, hierarchy] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 40, 10, 40, 9);
  std::string pattern =
      hierarchy ? T3Pattern(gamma, lambda) : T2Pattern(gamma, lambda);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {2, 3}) {
    DesqDfsOptions seq_options;
    seq_options.sigma = sigma;
    MiningResult expected =
        MineDesqDfs(db.sequences, fst, db.dict, seq_options);

    GapMinerOptions options;
    options.sigma = sigma;
    options.gamma = gamma;
    options.lambda = lambda;
    options.use_hierarchy = hierarchy;
    options.num_map_workers = 2;
    options.num_reduce_workers = 2;
    DistributedResult actual =
        MineGapConstrained(db.sequences, db.dict, options);
    EXPECT_EQ(actual.patterns, expected)
        << "gamma=" << gamma << " lambda=" << lambda << " sigma=" << sigma
        << " hierarchy=" << hierarchy << "\nactual:\n"
        << testing::Format(actual.patterns, db.dict) << "expected:\n"
        << testing::Format(expected, db.dict);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedGapMiner, GapMinerPropertyTest,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(0, 1, 2),
                                            ::testing::Values(2, 3, 4),
                                            ::testing::Bool()));

TEST(GapMinerTest, MinLengthOneMatchesPrefixSpanWithUnboundedGap) {
  // Regression: with min_length = 1 every frequent item is a pivot even
  // without a partner within gap reach (the MLlib-setting configuration).
  SequenceDatabase db = testing::RandomDatabase(71, 9, 60, 7);
  GapMinerOptions gap;
  gap.sigma = 3;
  gap.gamma = 1'000'000;  // arbitrary gaps
  gap.lambda = 3;
  gap.min_length = 1;
  gap.use_hierarchy = false;
  DistributedResult lash = MineGapConstrained(db.sequences, db.dict, gap);

  PrefixSpanOptions ps;
  ps.sigma = 3;
  ps.lambda = 3;
  DistributedResult mllib = MinePrefixSpan(db.sequences, db.dict, ps);
  EXPECT_EQ(lash.patterns, mllib.patterns);
  EXPECT_FALSE(lash.patterns.empty());
}

TEST(PrefixSpanTest, Simple) {
  DictionaryBuilder builder;
  ItemId a = builder.AddItem("a");
  ItemId b = builder.AddItem("b");
  ItemId c = builder.AddItem("c");
  SequenceDatabase db;
  db.dict = builder.Build();
  db.sequences = {{a, b, c}, {a, c}, {b, c}};
  db.Recode();

  PrefixSpanOptions options;
  options.sigma = 2;
  options.lambda = 3;
  DistributedResult result = MinePrefixSpan(db.sequences, db.dict, options);
  // Frequent: a(2), b(2), c(3), ac(2), bc(2), and not abc (1).
  EXPECT_EQ(result.patterns.size(), 5u)
      << testing::Format(result.patterns, db.dict);
}

TEST(PrefixSpanTest, MaxLengthRespected) {
  DictionaryBuilder builder;
  ItemId a = builder.AddItem("a");
  SequenceDatabase db;
  db.dict = builder.Build();
  db.sequences = {{a, a, a, a}, {a, a, a, a}};
  db.Recode();
  PrefixSpanOptions options;
  options.sigma = 2;
  options.lambda = 3;
  DistributedResult result = MinePrefixSpan(db.sequences, db.dict, options);
  for (const auto& pc : result.patterns) {
    EXPECT_LE(pc.pattern.size(), 3u);
  }
  EXPECT_EQ(result.patterns.size(), 3u);  // a, aa, aaa
}

class PrefixSpanPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSpanPropertyTest, MatchesDesqDfsOnT1) {
  int seed = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 60, 9, 30, 7);
  for (uint32_t lambda : {2, 4}) {
    Fst fst = CompileFst(T1Pattern(lambda), db.dict);
    for (uint64_t sigma : {2, 3}) {
      DesqDfsOptions seq_options;
      seq_options.sigma = sigma;
      MiningResult expected =
          MineDesqDfs(db.sequences, fst, db.dict, seq_options);

      PrefixSpanOptions options;
      options.sigma = sigma;
      options.lambda = lambda;
      options.num_map_workers = 2;
      options.num_reduce_workers = 2;
      DistributedResult actual =
          MinePrefixSpan(db.sequences, db.dict, options);
      EXPECT_EQ(actual.patterns, expected)
          << "lambda=" << lambda << " sigma=" << sigma << "\nactual:\n"
          << testing::Format(actual.patterns, db.dict) << "expected:\n"
          << testing::Format(expected, db.dict);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedPrefixSpan, PrefixSpanPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dseq
