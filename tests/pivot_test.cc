#include "src/core/pivot.h"

#include <gtest/gtest.h>

#include <random>

#include "src/core/candidates.h"
#include "src/core/mining.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

PivotSet Items(Sequence s) { return PivotSet::Items(std::move(s)); }

TEST(PivotMergeTest, PaperExampleRun) {
  // Paper Sec. V-A: run r4 with output sets {b,c}-{A}-{d,a1} over the order
  // b < A < d < a1 < c has pivots {c, d, a1} = K(r4).
  SequenceDatabase db = MakeRunningExample();
  ItemId b = db.dict.ItemByName("b");
  ItemId A = db.dict.ItemByName("A");
  ItemId d = db.dict.ItemByName("d");
  ItemId a1 = db.dict.ItemByName("a1");
  ItemId c = db.dict.ItemByName("c");

  PivotSet result = PivotsOfOutputSets({{b, c}, {A}, {d, a1}});
  EXPECT_EQ(result.items, (Sequence{d, a1, c}));
  EXPECT_FALSE(result.has_eps);
}

TEST(PivotMergeTest, SingleSetAllPivots) {
  // A run of length 1: all items are pivots.
  PivotSet result = PivotsOfOutputSets({{1, 5}});
  EXPECT_EQ(result.items, (Sequence{1, 5}));
}

TEST(PivotMergeTest, TwoSets) {
  // r4'': {b,c}-{A}: pivots A and c (paper example; b < A < c as fids
  // 1 < 2 < 3 here).
  PivotSet result = PivotsOfOutputSets({{1, 3}, {2}});
  EXPECT_EQ(result.items, (Sequence{2, 3}));
}

TEST(PivotMergeTest, EpsilonSetsAreNeutral) {
  PivotSet result = PivotsOfOutputSets({{}, {3, 4}, {}});
  EXPECT_EQ(result.items, (Sequence{3, 4}));
  EXPECT_FALSE(result.has_eps);
}

TEST(PivotMergeTest, AllEpsilonGivesEps) {
  PivotSet result = PivotsOfOutputSets({{}, {}});
  EXPECT_TRUE(result.has_eps);
  EXPECT_TRUE(result.items.empty());
}

TEST(PivotMergeTest, EmptyOperandAnnihilates) {
  PivotSet empty;
  PivotSet some = Items({1, 2});
  EXPECT_TRUE(PivotMerge(empty, some).IsEmpty());
  EXPECT_TRUE(PivotMerge(some, empty).IsEmpty());
}

TEST(PivotMergeTest, Commutative) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    auto random_set = [&]() {
      PivotSet s;
      s.has_eps = rng() % 3 == 0;
      size_t n = rng() % 4;
      for (size_t i = 0; i < n; ++i) {
        s.items.push_back(static_cast<ItemId>(rng() % 10 + 1));
      }
      std::sort(s.items.begin(), s.items.end());
      s.items.erase(std::unique(s.items.begin(), s.items.end()),
                    s.items.end());
      return s;
    };
    PivotSet u = random_set();
    PivotSet q = random_set();
    EXPECT_EQ(PivotMerge(u, q), PivotMerge(q, u));
  }
}

TEST(PivotMergeTest, Associative) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    auto random_set = [&]() {
      PivotSet s;
      s.has_eps = rng() % 3 == 0;
      size_t n = 1 + rng() % 3;
      for (size_t i = 0; i < n; ++i) {
        s.items.push_back(static_cast<ItemId>(rng() % 10 + 1));
      }
      std::sort(s.items.begin(), s.items.end());
      s.items.erase(std::unique(s.items.begin(), s.items.end()),
                    s.items.end());
      return s;
    };
    PivotSet a = random_set();
    PivotSet b = random_set();
    PivotSet c = random_set();
    EXPECT_EQ(PivotMerge(PivotMerge(a, b), c), PivotMerge(a, PivotMerge(b, c)));
  }
}

// Theorem 1 brute-force check: pivots via ⊕ equal the max items of the
// Cartesian product of random output-set lists.
TEST(PivotMergeTest, Theorem1AgainstBruteForce) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    size_t run_len = 1 + rng() % 5;
    std::vector<Sequence> sets(run_len);
    for (auto& s : sets) {
      size_t n = rng() % 3;  // may be empty (ε)
      for (size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<ItemId>(rng() % 8 + 1));
      }
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
    }
    // Brute force: expand the Cartesian product (ε sets contribute nothing).
    std::vector<Sequence> partial = {{}};
    for (const Sequence& s : sets) {
      if (s.empty()) continue;
      std::vector<Sequence> next;
      for (const Sequence& p : partial) {
        for (ItemId w : s) {
          Sequence ext = p;
          ext.push_back(w);
          next.push_back(std::move(ext));
        }
      }
      partial = std::move(next);
    }
    PivotSet expected;
    for (const Sequence& cand : partial) {
      if (cand.empty()) {
        expected.has_eps = true;
      } else {
        expected.items.push_back(PivotItem(cand));
      }
    }
    std::sort(expected.items.begin(), expected.items.end());
    expected.items.erase(
        std::unique(expected.items.begin(), expected.items.end()),
        expected.items.end());

    EXPECT_EQ(PivotsOfOutputSets(sets), expected) << "trial " << trial;
  }
}

TEST(PivotSearchTest, RunningExamplePivots) {
  // Paper Fig. 3 (σ=2): K(T1)={a1,c}, K(T2)={a1} after σ-filter (e is
  // infrequent), K(T4)=∅ (a2 infrequent), K(T5)={a1}.
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  ItemId a1 = db.dict.ItemByName("a1");
  ItemId c = db.dict.ItemByName("c");
  GridOptions options;
  options.prune_sigma = 2;

  auto pivots = [&](size_t i) {
    StateGrid grid = StateGrid::Build(db.sequences[i], fst, db.dict, options);
    return FindPivotItems(grid);
  };
  EXPECT_EQ(pivots(0), (Sequence{a1, c}));
  EXPECT_EQ(pivots(1), (Sequence{a1}));
  EXPECT_EQ(pivots(2), Sequence{});
  EXPECT_EQ(pivots(3), Sequence{});
  EXPECT_EQ(pivots(4), (Sequence{a1}));
}

TEST(PivotSearchTest, UnfilteredPivotsOfT2) {
  // Without σ-filtering, K(T2) = {a1, e} (paper Fig. 5b).
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[1], fst, db.dict, {});
  EXPECT_EQ(FindPivotItems(grid),
            (Sequence{db.dict.ItemByName("a1"), db.dict.ItemByName("e")}));
}

// Property: grid pivot search == pivots of brute-force candidates, for many
// random databases and patterns.
class PivotPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(PivotPropertyTest, GridMatchesBruteForce) {
  auto [seed, pattern] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed, 8, 30, 8);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {1, 2, 4}) {
    GridOptions options;
    options.prune_sigma = sigma;
    for (const Sequence& T : db.sequences) {
      StateGrid grid = StateGrid::Build(T, fst, db.dict, options);
      Sequence via_grid = FindPivotItems(grid);

      std::vector<Sequence> candidates;
      ASSERT_TRUE(EnumerateCandidates(grid, 1'000'000, &candidates));
      Sequence expected;
      for (const Sequence& s : candidates) expected.push_back(PivotItem(s));
      std::sort(expected.begin(), expected.end());
      expected.erase(std::unique(expected.begin(), expected.end()),
                     expected.end());

      EXPECT_EQ(via_grid, expected) << "sigma=" << sigma;

      // The no-grid ablation must agree as well.
      Sequence via_nogrid;
      ASSERT_TRUE(FindPivotItemsNoGrid(T, fst, db.dict, sigma, 100'000'000,
                                       &via_nogrid));
      EXPECT_EQ(via_nogrid, expected) << "sigma=" << sigma << " (no grid)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedPivots, PivotPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::ValuesIn(testing::PropertyPatterns())));

// --- PivotItemVec small-vector semantics ------------------------------------

TEST(PivotItemVecTest, StaysInlineUpToEightItems) {
  PivotItemVec v;
  EXPECT_TRUE(v.is_inline());
  EXPECT_TRUE(v.empty());
  for (ItemId w = 1; w <= PivotItemVec::kInlineCapacity; ++w) v.push_back(w);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), PivotItemVec::kInlineCapacity);
  v.push_back(99);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), PivotItemVec::kInlineCapacity + 1);
  EXPECT_EQ(v.back(), 99u);
  EXPECT_EQ(v.front(), 1u);
}

TEST(PivotItemVecTest, CopyAndMoveAcrossTheInlineBoundary) {
  for (size_t n : {0u, 3u, 8u, 9u, 40u}) {
    PivotItemVec v;
    Sequence expected;
    for (ItemId w = 1; w <= n; ++w) {
      v.push_back(w * 7);
      expected.push_back(w * 7);
    }
    PivotItemVec copy = v;
    EXPECT_EQ(copy, expected) << n;
    EXPECT_EQ(v, expected) << n;
    PivotItemVec moved = std::move(v);
    EXPECT_EQ(moved, expected) << n;
    EXPECT_TRUE(v.empty()) << n;  // NOLINT: deliberate use-after-move
    v = std::move(moved);
    EXPECT_EQ(v, expected) << n;
    PivotItemVec assigned;
    assigned.push_back(12345);
    assigned = copy;
    EXPECT_EQ(assigned, expected) << n;
  }
}

TEST(PivotItemVecTest, EraseAndSequenceConversion) {
  PivotItemVec v{5, 1, 3, 3, 1};
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  EXPECT_EQ(v, (Sequence{1, 3, 5}));
  EXPECT_EQ(v.ToSequence(), (Sequence{1, 3, 5}));
  PivotItemVec from_seq(Sequence{2, 4});
  EXPECT_EQ(from_seq, (Sequence{2, 4}));
}

TEST(PivotItemVecTest, MergeResultsAgreeAcrossTheSpillBoundary) {
  // PivotMerge / UnionWith on sets larger than the inline capacity must
  // agree with a plain-vector reference union/merge.
  std::mt19937_64 rng(31);
  for (int iter = 0; iter < 200; ++iter) {
    auto random_set = [&](size_t max_size) {
      Sequence s;
      size_t n = rng() % (max_size + 1);
      for (size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<ItemId>(rng() % 40 + 1));
      }
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      return s;
    };
    Sequence a = random_set(20);
    Sequence b = random_set(20);

    PivotSet u = PivotSet::Items(a);
    u.UnionWith(PivotSet::Items(b));
    Sequence expected_union;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(expected_union));
    EXPECT_EQ(u.items, expected_union) << "iter " << iter;

    if (!a.empty() && !b.empty()) {
      PivotSet merged = PivotMerge(PivotSet::Items(a), PivotSet::Items(b));
      Sequence expected_merge;
      ItemId min_a = a.front();
      ItemId min_b = b.front();
      for (ItemId w : a) {
        if (w >= min_b) expected_merge.push_back(w);
      }
      for (ItemId w : b) {
        if (w >= min_a) expected_merge.push_back(w);
      }
      std::sort(expected_merge.begin(), expected_merge.end());
      expected_merge.erase(
          std::unique(expected_merge.begin(), expected_merge.end()),
          expected_merge.end());
      EXPECT_EQ(merged.items, expected_merge) << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace dseq
