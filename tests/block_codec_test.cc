// Round-trip and robustness tests of the shuffle block codec: random and
// structured payloads must round-trip byte-identically, and adversarial
// blocks (truncations, bit flips, hostile length prefixes) must be rejected
// without crashes or huge allocations.
#include "src/util/block_codec.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/util/varint.h"

namespace dseq {
namespace {

std::string RoundTrip(const std::string& raw) {
  std::string block = CompressBlock(raw);
  std::string out;
  EXPECT_TRUE(DecompressBlock(block, &out)) << "raw size " << raw.size();
  return out;
}

TEST(BlockCodecTest, EmptyAndTiny) {
  EXPECT_EQ(RoundTrip(""), "");
  EXPECT_EQ(RoundTrip("a"), "a");
  EXPECT_EQ(RoundTrip("abc"), "abc");
  EXPECT_EQ(RoundTrip(std::string("\x00\x01\xff", 3)),
            std::string("\x00\x01\xff", 3));
}

TEST(BlockCodecTest, RunsCompressWell) {
  std::string raw(10'000, 'x');
  std::string block = CompressBlock(raw);
  EXPECT_EQ(RoundTrip(raw), raw);
  EXPECT_LT(block.size(), raw.size() / 10);
}

TEST(BlockCodecTest, RepetitiveRecordsCompress) {
  // Shuffle-like payload: repeated varint-framed records.
  std::string raw;
  for (int i = 0; i < 500; ++i) {
    PutVarint(&raw, 3);
    PutVarint(&raw, 12);
    raw += "key";
    raw += "payload";
    PutVarint(&raw, i % 7);
  }
  std::string block = CompressBlock(raw);
  EXPECT_EQ(RoundTrip(raw), raw);
  EXPECT_LT(block.size(), raw.size());
}

TEST(BlockCodecTest, RandomRoundTripFuzz) {
  std::mt19937_64 rng(4242);
  for (int iter = 0; iter < 200; ++iter) {
    size_t len = rng() % 5000;
    std::string raw(len, '\0');
    // Mix of uniform-random and low-entropy stretches.
    size_t i = 0;
    while (i < len) {
      if (rng() % 2 == 0) {
        size_t run = std::min<size_t>(len - i, 1 + rng() % 100);
        char c = static_cast<char>(rng() & 0xff);
        for (size_t j = 0; j < run; ++j) raw[i++] = c;
      } else {
        size_t run = std::min<size_t>(len - i, 1 + rng() % 50);
        for (size_t j = 0; j < run; ++j) {
          raw[i++] = static_cast<char>(rng() & 0xff);
        }
      }
    }
    EXPECT_EQ(RoundTrip(raw), raw) << "iter " << iter;
  }
}

TEST(BlockCodecTest, TruncatedBlocksRejected) {
  std::mt19937_64 rng(777);
  std::string raw;
  for (int i = 0; i < 300; ++i) {
    raw += "record" + std::to_string(rng() % 20);
  }
  std::string block = CompressBlock(raw);
  std::string out;
  // Every strict prefix must be rejected (shorter raw output or truncated
  // token stream), never crash.
  for (size_t cut = 0; cut < block.size(); ++cut) {
    EXPECT_FALSE(DecompressBlock(std::string_view(block.data(), cut), &out))
        << "cut " << cut;
  }
  EXPECT_TRUE(DecompressBlock(block, &out));
  EXPECT_EQ(out, raw);
  // Trailing garbage is also malformed: a block is exactly one frame.
  EXPECT_FALSE(DecompressBlock(block + "x", &out));
}

TEST(BlockCodecTest, CorruptedBlocksNeverCrash) {
  std::mt19937_64 rng(999);
  std::string raw;
  for (int i = 0; i < 200; ++i) raw += "abcabcabc" + std::to_string(i % 9);
  std::string block = CompressBlock(raw);
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = block;
    size_t flips = 1 + rng() % 4;
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^= static_cast<char>(1 << (rng() % 8));
    }
    std::string out;
    // Either decodes (to possibly different bytes) or is rejected — the
    // only forbidden outcomes are crashes and unbounded allocation.
    DecompressBlock(mutated, &out);
    EXPECT_LE(out.size(), mutated.size() * (uint64_t{1} << 15));
  }
}

TEST(BlockCodecTest, HostileLengthPrefixRejectedUpFront) {
  // varint(2^40) followed by nothing: must be rejected before allocating.
  std::string block;
  PutVarint(&block, uint64_t{1} << 40);
  std::string out;
  EXPECT_FALSE(DecompressBlock(block, &out));
  // A huge-but-in-bound length prefix followed by junk that fails token
  // validation must also come back false quickly, without reserving
  // anywhere near the claimed size up front.
  std::string padded;
  PutVarint(&padded, uint64_t{1} << 34);
  padded.append(1 << 20, '\xff');  // malformed token stream
  EXPECT_FALSE(DecompressBlock(padded, &out));
  EXPECT_LT(out.capacity(), (size_t{1} << 21));
  // A match referring before the start of the output is rejected.
  std::string bad;
  PutVarint(&bad, 8);                 // claims 8 raw bytes
  PutVarint(&bad, (8 - 4) << 1 | 1);  // match of length 8
  PutVarint(&bad, 3);                 // distance 3 > current output size 0
  EXPECT_FALSE(DecompressBlock(bad, &out));
}

TEST(BlockCodecTest, DeterministicOutput) {
  std::string raw;
  for (int i = 0; i < 1000; ++i) raw += "tok" + std::to_string(i % 13);
  EXPECT_EQ(CompressBlock(raw), CompressBlock(raw));
}

}  // namespace
}  // namespace dseq
