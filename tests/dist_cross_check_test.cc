// Randomized cross-check of the three distributed miners against the
// brute-force oracle (independent of every pattern-growth code path),
// sweeping map/reduce worker counts, plus the paper's Table IV direction:
// pivot partitioning shuffles strictly less than candidate shipping.
#include <gtest/gtest.h>

#include <tuple>

#include "src/dict/sequence.h"
#include "src/dist/dcand_miner.h"
#include "src/dist/dseq_miner.h"
#include "src/dist/naive.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

class DistCrossCheckTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(DistCrossCheckTest, AllMinersMatchBruteForceAcrossWorkerCounts) {
  auto [seed, pattern] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 2100, 7, 50, 8);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {1, 3}) {
    MiningResult expected =
        testing::BruteForceMine(db.sequences, fst, db.dict, sigma);

    testing::ForEachWorkerCount(
        [&](int workers) {
          NaiveOptions naive;
          naive.sigma = sigma;
          naive.num_map_workers = workers;
          naive.num_reduce_workers = workers;
          EXPECT_EQ(MineNaive(db.sequences, fst, db.dict, naive).patterns,
                    expected)
              << "NAIVE, pattern=" << pattern << " sigma=" << sigma;

          DSeqOptions dseq;
          dseq.sigma = sigma;
          dseq.num_map_workers = workers;
          dseq.num_reduce_workers = workers;
          EXPECT_EQ(MineDSeq(db.sequences, fst, db.dict, dseq).patterns,
                    expected)
              << "D-SEQ, pattern=" << pattern << " sigma=" << sigma;

          DCandOptions dcand;
          dcand.sigma = sigma;
          dcand.num_map_workers = workers;
          dcand.num_reduce_workers = workers;
          EXPECT_EQ(MineDCand(db.sequences, fst, db.dict, dcand).patterns,
                    expected)
              << "D-CAND, pattern=" << pattern << " sigma=" << sigma;
        },
        {1, 2, 4});
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedCrossCheck, DistCrossCheckTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::ValuesIn(testing::PropertyPatterns())));

TEST(DistCrossCheckTest, CompressionChangesNoMinerResult) {
  // Shuffle compression is a transport concern: every miner must produce
  // byte-identical patterns with the codec on, with identical raw shuffle
  // volume and a non-zero compressed volume reported on the side.
  SequenceDatabase db = testing::RandomDatabase(2600, 7, 50, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  const uint64_t sigma = 2;
  MiningResult expected =
      testing::BruteForceMine(db.sequences, fst, db.dict, sigma);

  auto check = [&](const DistributedResult& plain,
                   const DistributedResult& compressed, const char* name) {
    EXPECT_EQ(plain.patterns, expected) << name;
    EXPECT_EQ(compressed.patterns, expected) << name << " (compressed)";
    EXPECT_EQ(compressed.metrics.shuffle_bytes, plain.metrics.shuffle_bytes)
        << name;
    EXPECT_EQ(plain.metrics.shuffle_compressed_bytes, 0u) << name;
    if (compressed.metrics.shuffle_records > 0) {
      EXPECT_GT(compressed.metrics.shuffle_compressed_bytes, 0u) << name;
    }
  };

  NaiveOptions naive;
  naive.sigma = sigma;
  naive.num_map_workers = 2;
  naive.num_reduce_workers = 2;
  NaiveOptions naive_c = naive;
  naive_c.compress_shuffle = true;
  check(MineNaive(db.sequences, fst, db.dict, naive),
        MineNaive(db.sequences, fst, db.dict, naive_c), "NAIVE");

  DSeqOptions dseq;
  dseq.sigma = sigma;
  dseq.num_map_workers = 2;
  dseq.num_reduce_workers = 2;
  DSeqOptions dseq_c = dseq;
  dseq_c.compress_shuffle = true;
  check(MineDSeq(db.sequences, fst, db.dict, dseq),
        MineDSeq(db.sequences, fst, db.dict, dseq_c), "D-SEQ");

  DCandOptions dcand;
  dcand.sigma = sigma;
  dcand.num_map_workers = 2;
  dcand.num_reduce_workers = 2;
  DCandOptions dcand_c = dcand;
  dcand_c.compress_shuffle = true;
  check(MineDCand(db.sequences, fst, db.dict, dcand),
        MineDCand(db.sequences, fst, db.dict, dcand_c), "D-CAND");
}

TEST(DistShuffleTest, PivotPartitioningShufflesLessThanNaive) {
  // Paper Tab. IV direction on the running example: both item-based
  // representations (sequences and NFAs) shuffle strictly fewer bytes than
  // candidate shipping.
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);

  NaiveOptions naive;
  naive.sigma = 2;
  DistributedResult r_naive = MineNaive(db.sequences, fst, db.dict, naive);

  DSeqOptions dseq;
  dseq.sigma = 2;
  DistributedResult r_dseq = MineDSeq(db.sequences, fst, db.dict, dseq);

  DCandOptions dcand;
  dcand.sigma = 2;
  DistributedResult r_dcand = MineDCand(db.sequences, fst, db.dict, dcand);

  EXPECT_EQ(r_dseq.patterns, r_naive.patterns);
  EXPECT_EQ(r_dcand.patterns, r_naive.patterns);
  EXPECT_LT(r_dseq.metrics.shuffle_bytes, r_naive.metrics.shuffle_bytes);
  EXPECT_LT(r_dcand.metrics.shuffle_bytes, r_naive.metrics.shuffle_bytes);
}

TEST(DistributedHelpersTest, DistinctSequencesCountsDistinct) {
  EXPECT_EQ(DistinctSequences({}), 0u);
  EXPECT_EQ(DistinctSequences({{1, 2}, {1, 2}, {2, 1}, {3}}), 3u);
}

TEST(DistributedHelpersTest, PivotKeyRoundTrip) {
  for (ItemId pivot : {ItemId{1}, ItemId{127}, ItemId{128}, ItemId{65536}}) {
    EXPECT_EQ(DecodePivotKey(EncodePivotKey(pivot)), pivot);
  }
  EXPECT_THROW(DecodePivotKey(""), std::invalid_argument);
  EXPECT_THROW(DecodePivotKey(std::string(1, '\x80')), std::invalid_argument);
}

}  // namespace
}  // namespace dseq
