#include "src/dist/dcand_miner.h"

#include <gtest/gtest.h>

#include "src/core/desq_dfs.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

TEST(DCandTest, RunningExampleGolden) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DCandOptions options;
  options.sigma = 2;
  DistributedResult result = MineDCand(db.sequences, fst, db.dict, options);
  MiningResult expected = {
      {db.ParseSequence("a1 b"), 3},
      {db.ParseSequence("a1 a1 b"), 2},
      {db.ParseSequence("a1 A b"), 2},
  };
  Canonicalize(&expected);
  EXPECT_EQ(result.patterns, expected)
      << testing::Format(result.patterns, db.dict);
}

TEST(DCandTest, AggregationReducesShuffleRecords) {
  // Many identical sequences produce identical NFAs that the combiner must
  // aggregate into weighted NFAs.
  SequenceDatabase db = MakeRunningExample();
  std::vector<Sequence> repeated;
  for (int i = 0; i < 50; ++i) repeated.push_back(db.sequences[4]);
  Fst fst = CompileFst(kPatternEx, db.dict);

  DCandOptions with;
  with.sigma = 2;
  DCandOptions without = with;
  without.aggregate_nfas = false;
  DistributedResult r1 = MineDCand(repeated, fst, db.dict, with);
  DistributedResult r2 = MineDCand(repeated, fst, db.dict, without);
  EXPECT_EQ(r1.patterns, r2.patterns);
  EXPECT_LT(r1.metrics.shuffle_records, r2.metrics.shuffle_records);
  EXPECT_LT(r1.metrics.shuffle_bytes, r2.metrics.shuffle_bytes);
  EXPECT_EQ(r1.metrics.shuffle_records, 1u);  // one weighted NFA for P_a1
}

TEST(DCandTest, MinimizationReducesShuffleBytes) {
  SequenceDatabase db = MakeRunningExample();
  std::vector<Sequence> repeated;
  for (int i = 0; i < 10; ++i) repeated.push_back(db.sequences[0]);
  Fst fst = CompileFst(kPatternEx, db.dict);

  DCandOptions with;
  with.sigma = 2;
  with.aggregate_nfas = false;
  DCandOptions without = with;
  without.minimize_nfas = false;
  DistributedResult r1 = MineDCand(repeated, fst, db.dict, with);
  DistributedResult r2 = MineDCand(repeated, fst, db.dict, without);
  EXPECT_EQ(r1.patterns, r2.patterns);
  EXPECT_LT(r1.metrics.shuffle_bytes, r2.metrics.shuffle_bytes);
}

TEST(DCandTest, RunBudgetProducesOom) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DCandOptions options;
  options.sigma = 2;
  options.max_runs_per_sequence = 1;
  EXPECT_THROW(MineDCand(db.sequences, fst, db.dict, options),
               MiningBudgetError);
}

TEST(MineNfasTest, WeightsSumAcrossNfas) {
  // Two weighted NFAs accepting {x}: support = sum of weights.
  OutputNfa a;
  a.AddLabelString({{5}});
  a.Canonicalize();
  OutputNfa b;
  b.AddLabelString({{5}, {3}});
  b.AddLabelString({{5}});
  b.Canonicalize();
  MiningResult result = MineNfas({a, b}, {3, 4}, /*sigma=*/5, /*pivot=*/5);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].pattern, (Sequence{5}));
  EXPECT_EQ(result[0].frequency, 7u);
}

TEST(MineNfasTest, NonPivotSequencesNotOutput) {
  OutputNfa a;
  a.AddLabelString({{2}, {5}});
  a.AddLabelString({{2}});
  a.Canonicalize();
  // Sequence {2} has pivot 2, not 5; must not be reported by partition 5.
  MiningResult result = MineNfas({a, a}, {1, 1}, 2, 5);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].pattern, (Sequence{2, 5}));
}

TEST(MineNfasTest, CandidateCountedOncePerNfa) {
  // An NFA accepting {x} along two paths still contributes its weight once.
  OutputNfa a;
  a.AddLabelString({{4, 5}});  // label set {4,5}: accepts "4" and "5"
  a.AddLabelString({{5}});
  a.Canonicalize();
  MiningResult result = MineNfas({a}, {2}, 1, 5);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].pattern, (Sequence{5}));
  EXPECT_EQ(result[0].frequency, 2u);
}

class DCandPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(DCandPropertyTest, MatchesDesqDfs) {
  auto [seed, pattern] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 900, 8, 40, 8);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {1, 2, 4}) {
    DesqDfsOptions seq_options;
    seq_options.sigma = sigma;
    MiningResult expected =
        MineDesqDfs(db.sequences, fst, db.dict, seq_options);

    for (bool minimize : {false, true}) {
      for (bool aggregate : {false, true}) {
        DCandOptions options;
        options.sigma = sigma;
        options.minimize_nfas = minimize;
        options.aggregate_nfas = aggregate;
        options.num_map_workers = 2;
        options.num_reduce_workers = 2;
        DistributedResult actual =
            MineDCand(db.sequences, fst, db.dict, options);
        EXPECT_EQ(actual.patterns, expected)
            << "pattern=" << pattern << " sigma=" << sigma
            << " minimize=" << minimize << " aggregate=" << aggregate;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedDCand, DCandPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::ValuesIn(testing::PropertyPatterns())));

}  // namespace
}  // namespace dseq
