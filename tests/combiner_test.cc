// Unit tests of the map-side combiners: key collisions, empty payloads,
// weight-sum overflow near uint64 max, and loud failure on malformed
// varint-coded values (silent miscounts are the one unforgivable bug in a
// support-counting system).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/dataflow/engine.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

std::string Varint(uint64_t v) {
  std::string s;
  PutVarint(&s, v);
  return s;
}

// Flushes a combiner into a sorted (key, value) list.
std::vector<std::pair<std::string, std::string>> Flush(Combiner& combiner) {
  std::vector<std::pair<std::string, std::string>> out;
  combiner.Flush([&](std::string_view key, std::string_view value) {
    out.emplace_back(std::string(key), std::string(value));
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SumCombinerTest, SumsCollidingKeys) {
  auto combiner = MakeSumCombiner();
  combiner->Add("a", Varint(2));
  combiner->Add("b", Varint(1));
  combiner->Add("a", Varint(3));
  auto records = Flush(*combiner);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], std::make_pair(std::string("a"), Varint(5)));
  EXPECT_EQ(records[1], std::make_pair(std::string("b"), Varint(1)));
}

TEST(SumCombinerTest, MalformedVarintFailsLoudly) {
  // Truncated varint (lone continuation byte).
  EXPECT_THROW(MakeSumCombiner()->Add("k", std::string(1, '\x80')),
               std::invalid_argument);
  // Empty value.
  EXPECT_THROW(MakeSumCombiner()->Add("k", ""), std::invalid_argument);
  // Trailing bytes after a valid varint are just as malformed — a count
  // record is exactly one varint.
  EXPECT_THROW(MakeSumCombiner()->Add("k", Varint(1) + "junk"),
               std::invalid_argument);
}

TEST(SumCombinerTest, CountOverflowNearUint64MaxFailsLoudly) {
  auto combiner = MakeSumCombiner();
  combiner->Add("k", Varint(kMax - 1));
  combiner->Add("k", Varint(1));  // exactly reaches the max: fine
  EXPECT_THROW(combiner->Add("k", Varint(1)), std::overflow_error);

  auto records = Flush(*MakeSumCombiner());  // unrelated instance is clean
  EXPECT_TRUE(records.empty());
}

TEST(WeightedValueCombinerTest, MergesIdenticalPayloadsPerKey) {
  auto combiner = MakeWeightedValueCombiner();
  combiner->Add("k", Varint(2) + "nfa1");
  combiner->Add("k", Varint(3) + "nfa1");
  combiner->Add("k", Varint(1) + "nfa2");
  combiner->Add("other", Varint(1) + "nfa1");
  auto records = Flush(*combiner);
  ASSERT_EQ(records.size(), 3u);
  // Sorted by (key, value); the varint weight byte is the value's first.
  EXPECT_EQ(records[0], std::make_pair(std::string("k"), Varint(1) + "nfa2"));
  EXPECT_EQ(records[1], std::make_pair(std::string("k"), Varint(5) + "nfa1"));
  EXPECT_EQ(records[2],
            std::make_pair(std::string("other"), Varint(1) + "nfa1"));
}

TEST(WeightedValueCombinerTest, EmptyPayloadAggregates) {
  auto combiner = MakeWeightedValueCombiner();
  combiner->Add("k", Varint(2));  // weight only, empty payload
  combiner->Add("k", Varint(5));
  auto records = Flush(*combiner);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], std::make_pair(std::string("k"), Varint(7)));
}

TEST(WeightedValueCombinerTest, MissingWeightPrefixFailsLoudly) {
  EXPECT_THROW(MakeWeightedValueCombiner()->Add("k", ""),
               std::invalid_argument);
  EXPECT_THROW(MakeWeightedValueCombiner()->Add("k", std::string(1, '\x80')),
               std::invalid_argument);
}

TEST(WeightedValueCombinerTest, WeightOverflowNearUint64MaxFailsLoudly) {
  auto combiner = MakeWeightedValueCombiner();
  combiner->Add("k", Varint(kMax - 2) + "payload");
  combiner->Add("k", Varint(2) + "payload");  // exactly reaches the max
  EXPECT_THROW(combiner->Add("k", Varint(1) + "payload"), std::overflow_error);
  // A different payload under the same key has its own sum and is fine.
  combiner->Add("k", Varint(kMax) + "other");
  auto records = Flush(*combiner);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], std::make_pair(std::string("k"), Varint(kMax) + "other"));
  EXPECT_EQ(records[1],
            std::make_pair(std::string("k"), Varint(kMax) + "payload"));
}

TEST(CombinerEngineTest, MalformedValuePropagatesOutOfRunMapReduce) {
  // A mapper feeding garbage to the combiner must fail the whole round, not
  // miscount: the engine rethrows the map worker's exception.
  MapFn map_fn = [](size_t, const EmitFn& emit) { emit("k", "\x80"); };
  ReduceFn sink = [](int, std::string_view, std::vector<std::string_view>&) {};
  DataflowOptions options;
  options.num_map_workers = 2;
  EXPECT_THROW(RunMapReduce(4, map_fn, MakeSumCombiner, sink, options),
               std::invalid_argument);
}

// --- Equivalence against a reference model ---------------------------------
//
// The arena-backed combiners must produce, as a multiset of records, exactly
// what the straightforward std::map implementations produce (the PR-2
// behavior) — byte for byte, for arbitrary binary keys and payloads.

std::string RandomBytes(std::mt19937_64& rng, size_t max_len) {
  size_t len = rng() % (max_len + 1);
  std::string s(len, '\0');
  for (char& c : s) c = static_cast<char>(rng() & 0xff);
  return s;
}

TEST(SumCombinerTest, MatchesReferenceModelOnRandomInputs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng(1234 + seed);
    auto combiner = MakeSumCombiner();
    std::map<std::string, uint64_t> reference;
    size_t n = 200 + rng() % 2000;
    std::vector<std::string> keys;
    for (int k = 0; k < 20; ++k) keys.push_back(RandomBytes(rng, 12));
    for (size_t i = 0; i < n; ++i) {
      const std::string& key = keys[rng() % keys.size()];
      uint64_t count = rng() % 1000;
      combiner->Add(key, Varint(count));
      reference[key] += count;
    }
    std::vector<std::pair<std::string, std::string>> expected;
    for (const auto& [key, count] : reference) {
      expected.emplace_back(key, Varint(count));
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(Flush(*combiner), expected) << "seed " << seed;
  }
}

TEST(WeightedValueCombinerTest, MatchesReferenceModelOnRandomInputs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng(9876 + seed);
    auto combiner = MakeWeightedValueCombiner();
    std::map<std::string, std::map<std::string, uint64_t>> reference;
    size_t n = 200 + rng() % 2000;
    std::vector<std::string> keys;
    std::vector<std::string> payloads;
    for (int k = 0; k < 12; ++k) keys.push_back(RandomBytes(rng, 10));
    for (int p = 0; p < 25; ++p) payloads.push_back(RandomBytes(rng, 30));
    for (size_t i = 0; i < n; ++i) {
      const std::string& key = keys[rng() % keys.size()];
      const std::string& payload = payloads[rng() % payloads.size()];
      uint64_t weight = 1 + rng() % 50;
      combiner->Add(key, Varint(weight) + payload);
      reference[key][payload] += weight;
    }
    std::vector<std::pair<std::string, std::string>> expected;
    for (const auto& [key, by_payload] : reference) {
      for (const auto& [payload, weight] : by_payload) {
        expected.emplace_back(key, Varint(weight) + payload);
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(Flush(*combiner), expected) << "seed " << seed;
  }
}

TEST(CombinerTest, ReusableAfterFlush) {
  // The engine flushes once per worker, but a second fill must start clean
  // (the arena and table are reset).
  auto combiner = MakeWeightedValueCombiner();
  combiner->Add("k", Varint(2) + "a");
  auto first = Flush(*combiner);
  ASSERT_EQ(first.size(), 1u);
  combiner->Add("k", Varint(3) + "a");
  combiner->Add("q", Varint(1) + "b");
  auto second = Flush(*combiner);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0], std::make_pair(std::string("k"), Varint(3) + "a"));
  EXPECT_EQ(second[1], std::make_pair(std::string("q"), Varint(1) + "b"));
}

}  // namespace
}  // namespace dseq
