// Reference snippet for correctly annotated synchronization: must compile
// warning-clean on every supported compiler, and under Clang with
// -Werror=thread-safety (the negative snippets next to it must NOT). It
// exercises every construct the repo uses: GUARDED_BY members behind
// MutexLock, a REQUIRES helper, PT_GUARDED_BY, EXCLUDES, the manual
// try_lock/unlock path, and a CondVar wait loop.
#include <cstdint>

#include "src/util/sync.h"

namespace {

class AnnotatedCounter {
 public:
  void Add(uint64_t n) DSEQ_EXCLUDES(mu_) {
    dseq::MutexLock lock(mu_);
    AddLocked(n);
  }

  bool TryAdd(uint64_t n) DSEQ_EXCLUDES(mu_) {
    if (!mu_.try_lock()) return false;
    AddLocked(n);
    mu_.unlock();
    return true;
  }

  void SetSink(uint64_t* sink) DSEQ_EXCLUDES(mu_) {
    dseq::MutexLock lock(mu_);
    sink_ = sink;
    if (sink_ != nullptr) *sink_ = value_;
  }

  void WaitUntilAtLeast(uint64_t threshold) DSEQ_EXCLUDES(mu_) {
    dseq::MutexLock lock(mu_);
    while (value_ < threshold) cv_.Wait(mu_);
  }

  uint64_t Value() DSEQ_EXCLUDES(mu_) {
    dseq::MutexLock lock(mu_);
    return value_;
  }

 private:
  void AddLocked(uint64_t n) DSEQ_REQUIRES(mu_) {
    value_ += n;
    if (sink_ != nullptr) *sink_ = value_;
    cv_.NotifyAll();
  }

  dseq::Mutex mu_;
  dseq::CondVar cv_;
  uint64_t value_ DSEQ_GUARDED_BY(mu_) = 0;
  uint64_t* sink_ DSEQ_GUARDED_BY(mu_) DSEQ_PT_GUARDED_BY(mu_) = nullptr;
};

}  // namespace

int main() {
  AnnotatedCounter counter;
  counter.Add(1);
  (void)counter.TryAdd(2);
  uint64_t sink = 0;
  counter.SetSink(&sink);
  counter.WaitUntilAtLeast(1);
  return counter.Value() == 0 ? 1 : 0;
}
