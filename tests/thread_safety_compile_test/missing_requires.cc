// NEGATIVE snippet: calls a DSEQ_REQUIRES helper without holding the mutex
// it names. Must draw "calling function ... requires holding mutex" under
// -Werror=thread-safety.
#include <cstdint>

#include "src/util/sync.h"

namespace {

class Broken {
 public:
  void Increment() {
    IncrementLocked();  // BUG: caller never acquired mu_
  }

 private:
  void IncrementLocked() DSEQ_REQUIRES(mu_) { ++value_; }

  dseq::Mutex mu_;
  uint64_t value_ DSEQ_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Broken b;
  b.Increment();
  return 0;
}
