// NEGATIVE snippet: writes a DSEQ_GUARDED_BY member without holding its
// mutex. Must draw "writing variable ... requires holding mutex" under
// -Werror=thread-safety; the ctest entry passes only when that diagnostic
// appears.
#include <cstdint>

#include "src/util/sync.h"

namespace {

class Broken {
 public:
  void Increment() {
    ++value_;  // BUG: mu_ not held
  }

 private:
  dseq::Mutex mu_;
  uint64_t value_ DSEQ_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Broken b;
  b.Increment();
  return 0;
}
