// NEGATIVE snippet: acquires the same mutex twice (dseq::Mutex is
// non-recursive — this deadlocks at runtime). Must draw "acquiring mutex
// ... that is already held" under -Werror=thread-safety.
#include "src/util/sync.h"

int main() {
  dseq::Mutex mu;
  mu.lock();
  mu.lock();  // BUG: already held by this thread
  mu.unlock();
  mu.unlock();
  return 0;
}
