// NEGATIVE snippet: releases a mutex the thread never acquired (undefined
// behavior on std::mutex). Must draw "releasing mutex ... that was not
// held" under -Werror=thread-safety.
#include "src/util/sync.h"

int main() {
  dseq::Mutex mu;
  mu.unlock();  // BUG: never locked
  return 0;
}
