#include "src/fst/compiler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/candidates.h"
#include "src/core/grid.h"
#include "src/dict/sequence.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

// Enumerates Gπ(T) (or Gσπ(T) if sigma > 0) as readable strings.
std::vector<std::string> Candidates(const SequenceDatabase& db,
                                    const Fst& fst, const Sequence& T,
                                    uint64_t sigma = 0) {
  GridOptions options;
  options.prune_sigma = sigma;
  StateGrid grid = StateGrid::Build(T, fst, db.dict, options);
  std::vector<Sequence> candidates;
  EXPECT_TRUE(EnumerateCandidates(grid, 1'000'000, &candidates));
  std::vector<std::string> out;
  for (const Sequence& s : candidates) out.push_back(db.FormatSequence(s));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(FstCompilerTest, UnknownItemThrows) {
  SequenceDatabase db = MakeRunningExample();
  EXPECT_THROW(CompileFst("(nosuchitem)", db.dict), FstCompileError);
}

TEST(FstCompilerTest, RunningExampleCompiles) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  EXPECT_GT(fst.num_states(), 0u);
  EXPECT_GT(fst.num_transitions(), 0u);
}

// Paper Fig. 3: candidate subsequences Gπex(T) for every input sequence.
TEST(FstGoldenTest, CandidatesOfT1) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[0]),
            Sorted({"a1 c d c b", "a1 c d b", "a1 c b", "a1 d c b",
                    "a1 c c b", "a1 d b", "a1 b"}));
}

TEST(FstGoldenTest, CandidatesOfT2) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[1]),
            Sorted({"a1 a1 b", "a1 A b", "a1 b", "a1 e b", "a1 e e b",
                    "a1 a1 e b", "a1 A e b", "a1 e a1 b", "a1 e A b",
                    "a1 e a1 e b", "a1 e A e b"}));
}

TEST(FstGoldenTest, CandidatesOfT3IsEmpty) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  GridOptions options;
  StateGrid grid = StateGrid::Build(db.sequences[2], fst, db.dict, options);
  EXPECT_FALSE(grid.HasAcceptingRun());
  EXPECT_TRUE(Candidates(db, fst, db.sequences[2]).empty());
}

TEST(FstGoldenTest, CandidatesOfT4) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[3]),
            Sorted({"a2 d b", "a2 b"}));
}

TEST(FstGoldenTest, CandidatesOfT5) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[4]),
            Sorted({"a1 a1 b", "a1 A b", "a1 b"}));
}

// Sec. II: "Aa1b ⋠πex T5, because pattern expression (A) does not allow to
// generalize matched items".
TEST(FstGoldenTest, CaptureWithoutGeneralizeDoesNotGeneralize) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  auto candidates = Candidates(db, fst, db.sequences[4]);
  EXPECT_EQ(std::count(candidates.begin(), candidates.end(), "A a1 b"), 0);
  EXPECT_EQ(std::count(candidates.begin(), candidates.end(), "A b"), 0);
}

// Sigma-pruned candidates Gσπ(T): e and a2 are infrequent at σ=2 (Fig. 3
// crosses those candidates out).
TEST(FstGoldenTest, SigmaPrunedCandidates) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[1], 2),
            Sorted({"a1 a1 b", "a1 A b", "a1 b"}));
  EXPECT_TRUE(Candidates(db, fst, db.sequences[3], 2).empty());
}

TEST(FstSemanticsTest, ExactMatchDoesNotMatchDescendants) {
  SequenceDatabase db = MakeRunningExample();
  // A= matches only the item A itself, not a1/a2.
  Fst fst = CompileFst("(A=).*", db.dict);
  GridOptions options;
  StateGrid grid = StateGrid::Build(db.sequences[0], fst, db.dict, options);
  EXPECT_FALSE(grid.HasAcceptingRun());  // T1 starts with a1, not A

  Sequence just_a = {db.dict.ItemByName("A")};
  StateGrid grid2 = StateGrid::Build(just_a, fst, db.dict, options);
  EXPECT_TRUE(grid2.HasAcceptingRun());
}

TEST(FstSemanticsTest, GeneralizeUpTo) {
  SequenceDatabase db = MakeRunningExample();
  // (A^) on input a1 outputs a1 and A (generalizations up to A).
  Fst fst = CompileFst("(A^).*", db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[0]), Sorted({"a1", "A"}));
}

TEST(FstSemanticsTest, ForcedGeneralization) {
  SequenceDatabase db = MakeRunningExample();
  // (A^=) on input a1 outputs A only.
  Fst fst = CompileFst("(A^=).*", db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[0]), Sorted({"A"}));
}

TEST(FstSemanticsTest, DotGeneralizeOutputsAllAncestors) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst("(.^).*", db.dict);
  // First item of T1 is a1: outputs a1 or A.
  EXPECT_EQ(Candidates(db, fst, db.sequences[0]), Sorted({"a1", "A"}));
}

TEST(FstSemanticsTest, UncapturedItemsProduceNoOutput) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst("a1 (c) .*", db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[0]), Sorted({"c"}));
}

TEST(FstSemanticsTest, AlternationProducesUnionOfCandidates) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst("[(a1)|(c)].*", db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[0]), Sorted({"a1"}));
  EXPECT_EQ(Candidates(db, fst, db.sequences[2]), Sorted({"c"}));
}

TEST(FstSemanticsTest, BoundedRepetition) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst("(.){2}.*", db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[4]), Sorted({"a1 a1"}));
  // {2} requires at least 2 items.
  Sequence one = {db.dict.ItemByName("b")};
  GridOptions options;
  StateGrid grid = StateGrid::Build(one, fst, db.dict, options);
  EXPECT_FALSE(grid.HasAcceptingRun());
}

TEST(FstSemanticsTest, AnchoredMatchConsumesWholeSequence) {
  SequenceDatabase db = MakeRunningExample();
  // Without trailing .*, the pattern must span the entire sequence.
  Fst fst = CompileFst("(a1)(a1)(b)", db.dict);
  EXPECT_EQ(Candidates(db, fst, db.sequences[4]), Sorted({"a1 a1 b"}));
  EXPECT_TRUE(Candidates(db, fst, db.sequences[0]).empty());
}

TEST(FstSemanticsTest, GapConstraintLimitsDistance) {
  SequenceDatabase db = MakeRunningExample();
  // (a1)[.{0,1}(b)]: a1 then b with at most one item between.
  Fst fst = CompileFst(".*(a1)[.{0,1}(b)].*", db.dict);
  // T5 = a1 a1 b: both a1's within distance. T1 = a1 c d c b: too far.
  EXPECT_EQ(Candidates(db, fst, db.sequences[4]), Sorted({"a1 b"}));
  EXPECT_TRUE(Candidates(db, fst, db.sequences[0]).empty());
}

TEST(FstSemanticsTest, EmptySequenceAcceptedOnlyByNullablePattern) {
  SequenceDatabase db = MakeRunningExample();
  GridOptions options;
  Fst star = CompileFst(".*", db.dict);
  StateGrid g1 = StateGrid::Build({}, star, db.dict, options);
  EXPECT_TRUE(g1.HasAcceptingRun());  // accepts, but no non-empty output

  Fst item = CompileFst("(a1)", db.dict);
  StateGrid g2 = StateGrid::Build({}, item, db.dict, options);
  EXPECT_FALSE(g2.HasAcceptingRun());
}

TEST(FstSemanticsTest, DebugStringMentionsStates) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  std::string dump = fst.DebugString(db.dict);
  EXPECT_NE(dump.find("FST initial=q"), std::string::npos);
  EXPECT_NE(dump.find("desc(A)"), std::string::npos);
}

}  // namespace
}  // namespace dseq
