// Multi-process backend tests: the RPC frame codec, the backend-equivalence
// matrix (every distributed miner under --backend proc must be
// byte-identical to the local backend and the brute-force oracle, with
// identical raw shuffle metrics), the out-of-core and compressed configs,
// and fault tolerance (a worker killed mid-round must not change results).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/baselines/prefix_span.h"
#include "src/dataflow/chained.h"
#include "src/dataflow/engine.h"
#include "src/dist/dcand_miner.h"
#include "src/dist/dseq_miner.h"
#include "src/dist/naive.h"
#include "src/fst/compiler.h"
#include "src/rpc/frame.h"
#include "src/rpc/proc_backend.h"
#include "src/util/varint.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

// --- Frame codec ------------------------------------------------------------

TEST(FrameCodecTest, RoundTripsFramesFedByteByByte) {
  std::string wire;
  rpc::AppendFrame(&wire, rpc::MsgType::kHello, "w0");
  rpc::AppendFrame(&wire, rpc::MsgType::kSegment, std::string(300, 'x'));
  rpc::AppendFrame(&wire, rpc::MsgType::kShutdown, "");

  // One byte at a time: the decoder must report kNeedMore until a frame
  // completes, and must never mis-frame across the Append boundaries.
  rpc::FrameDecoder decoder;
  std::vector<std::pair<rpc::MsgType, std::string>> frames;
  for (char byte : wire) {
    decoder.Append(std::string_view(&byte, 1));
    rpc::MsgType type;
    std::string_view payload;
    while (decoder.Next(&type, &payload) == rpc::FrameDecoder::Status::kFrame) {
      frames.emplace_back(type, std::string(payload));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].first, rpc::MsgType::kHello);
  EXPECT_EQ(frames[0].second, "w0");
  EXPECT_EQ(frames[1].first, rpc::MsgType::kSegment);
  EXPECT_EQ(frames[1].second, std::string(300, 'x'));
  EXPECT_EQ(frames[2].first, rpc::MsgType::kShutdown);
  EXPECT_EQ(frames[2].second, "");
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameCodecTest, OversizePayloadIsRejectedFromTheLengthPrefix) {
  // The length prefix alone must condemn the frame — no payload bytes are
  // ever buffered, so a hostile peer cannot make the coordinator allocate.
  std::string wire;
  PutVarint(&wire, static_cast<uint64_t>(rpc::MsgType::kSegment));
  PutVarint(&wire, rpc::kMaxFramePayloadBytes + 1);
  rpc::FrameDecoder decoder;
  decoder.Append(wire);
  rpc::MsgType type;
  std::string_view payload;
  EXPECT_EQ(decoder.Next(&type, &payload),
            rpc::FrameDecoder::Status::kBadFrame);
  // A bad stream is dead: more bytes cannot resurrect it.
  decoder.Append("anything");
  EXPECT_EQ(decoder.Next(&type, &payload),
            rpc::FrameDecoder::Status::kBadFrame);
}

TEST(FrameCodecTest, UnknownMessageTypeIsRejected) {
  std::string wire;
  PutVarint(&wire, 99);  // no such MsgType
  PutVarint(&wire, 0);
  rpc::FrameDecoder decoder;
  decoder.Append(wire);
  rpc::MsgType type;
  std::string_view payload;
  EXPECT_EQ(decoder.Next(&type, &payload),
            rpc::FrameDecoder::Status::kBadFrame);
}

TEST(FrameCodecTest, TruncatedFrameReportsNeedMore) {
  std::string wire;
  rpc::AppendFrame(&wire, rpc::MsgType::kMapTask, "payload");
  rpc::FrameDecoder decoder;
  decoder.Append(std::string_view(wire).substr(0, wire.size() - 1));
  rpc::MsgType type;
  std::string_view payload;
  EXPECT_EQ(decoder.Next(&type, &payload),
            rpc::FrameDecoder::Status::kNeedMore);
  decoder.Append(std::string_view(wire).substr(wire.size() - 1));
  ASSERT_EQ(decoder.Next(&type, &payload), rpc::FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "payload");
}

// --- Backend equivalence ----------------------------------------------------

// The determinism contract of src/rpc/proc_backend.h: raw shuffle metrics
// are identical across backends; spill_* and wall times are not compared.
void ExpectSameRawMetrics(const DataflowMetrics& local,
                          const DataflowMetrics& proc) {
  EXPECT_EQ(local.shuffle_bytes, proc.shuffle_bytes);
  EXPECT_EQ(local.shuffle_records, proc.shuffle_records);
  EXPECT_EQ(local.map_output_records, proc.map_output_records);
  EXPECT_EQ(local.shuffle_compressed_bytes, proc.shuffle_compressed_bytes);
  EXPECT_EQ(local.reducer_bytes, proc.reducer_bytes);
}

TEST(ProcBackendTest, MinersMatchLocalAndBruteForceAcrossWorkerCounts) {
  SequenceDatabase db = testing::RandomDatabase(4200, 7, 50, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  const uint64_t sigma = 2;
  MiningResult expected =
      testing::BruteForceMine(db.sequences, fst, db.dict, sigma);

  testing::ForEachWorkerCount(
      [&](int workers) {
        auto run = [&](auto& options, auto miner, const char* name) {
          options.sigma = sigma;
          options.num_map_workers = workers;
          options.num_reduce_workers = workers;
          options.backend = DataflowBackend::kLocal;
          DistributedResult local = miner(db.sequences, fst, db.dict, options);
          options.backend = DataflowBackend::kProc;
          DistributedResult proc = miner(db.sequences, fst, db.dict, options);
          EXPECT_EQ(local.patterns, expected) << name;
          EXPECT_EQ(proc.patterns, expected) << name << " (proc)";
          ExpectSameRawMetrics(local.metrics, proc.metrics);
        };
        NaiveOptions naive;
        run(naive,
            [](auto&&... a) { return MineNaive(a...); }, "NAIVE");
        DSeqOptions dseq;
        run(dseq,
            [](auto&&... a) { return MineDSeq(a...); }, "D-SEQ");
        DCandOptions dcand;
        run(dcand,
            [](auto&&... a) { return MineDCand(a...); }, "D-CAND");
      },
      {2, 4});
}

TEST(ProcBackendTest, CompressedShuffleIsIdenticalAcrossBackends) {
  SequenceDatabase db = testing::RandomDatabase(4300, 7, 60, 8);
  Fst fst = CompileFst(".*(i0)[(.^).*]*(i1).*", db.dict);
  DSeqOptions options;
  options.sigma = 2;
  options.num_map_workers = 3;
  options.num_reduce_workers = 3;
  options.compress_shuffle = true;
  DistributedResult local = MineDSeq(db.sequences, fst, db.dict, options);
  options.backend = DataflowBackend::kProc;
  DistributedResult proc = MineDSeq(db.sequences, fst, db.dict, options);
  EXPECT_EQ(local.patterns, proc.patterns);
  ASSERT_GT(local.metrics.shuffle_compressed_bytes, 0u);
  ExpectSameRawMetrics(local.metrics, proc.metrics);
}

TEST(ProcBackendTest, BudgetedSpillingRunIsIdenticalAcrossBackends) {
  SequenceDatabase db = testing::RandomDatabase(4400, 7, 80, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  const uint64_t sigma = 2;
  MiningResult expected =
      testing::BruteForceMine(db.sequences, fst, db.dict, sigma);
  testing::ScopedTempDir spill_dir;

  DSeqOptions options;
  options.sigma = sigma;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  // Budget well below the measured shuffle volume so both backends must
  // spill (the same scaling the local out-of-core acceptance test uses).
  DistributedResult unbudgeted = MineDSeq(db.sequences, fst, db.dict, options);
  ASSERT_GT(unbudgeted.metrics.shuffle_bytes, 0u);
  options.memory_budget_bytes = testing::SpillTestBudget(
      std::max<uint64_t>(unbudgeted.metrics.shuffle_bytes / 4, 64));
  options.spill_dir = spill_dir.path();
  options.spill_merge_fan_in = 4;
  DistributedResult local = MineDSeq(db.sequences, fst, db.dict, options);
  options.backend = DataflowBackend::kProc;
  DistributedResult proc = MineDSeq(db.sequences, fst, db.dict, options);

  EXPECT_EQ(local.patterns, expected);
  EXPECT_EQ(proc.patterns, expected);
  ExpectSameRawMetrics(local.metrics, proc.metrics);
  // The budget must actually bite in the worker processes — otherwise this
  // test exercises nothing — and the workers' spill files must all be gone
  // (ScopedTempDir verifies the directory is empty on destruction).
  EXPECT_GT(proc.metrics.spill_files, 0u);
}

TEST(ProcBackendTest, BudgetWithoutSpillDirThrowsAcrossTheWire) {
  // A worker that overflows its memory budget with nowhere to spill must
  // surface the same typed error the local backend throws, carried through
  // the kError frame and rethrown by the coordinator.
  SequenceDatabase db = testing::RandomDatabase(4500, 7, 60, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  DSeqOptions options;
  options.sigma = 2;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  options.memory_budget_bytes = 64;
  options.backend = DataflowBackend::kProc;
  EXPECT_THROW(MineDSeq(db.sequences, fst, db.dict, options),
               ShuffleOverflowError);
}

// --- Failure policy ---------------------------------------------------------

// Word-count harness for the failure-policy tests. The map closure is under
// test control, and fork copies it into the worker process — so a closure
// that kills, sleeps, or races on a lock file runs inside the child with no
// build-time hooks, in default (non-fault-injection) builds.
const std::vector<std::vector<std::string>>& PolicyInputs() {
  static const std::vector<std::vector<std::string>> inputs = {
      {"b", "a", "b"}, {"c", "c", "a"}, {"a"},      {"b", "d"},
      {"d", "a", "c"}, {"e"},           {"a", "e"}, {"b", "c"},
  };
  return inputs;
}

// Runs one word-count round under `options`, calling `before(i)` (if set)
// inside the map before input i is processed. Returns the boundary records
// and the round's metrics.
std::pair<std::vector<Record>, DataflowMetrics> RunPolicyRound(
    const ChainedDataflowOptions& options,
    std::function<void(size_t)> before = nullptr) {
  DataflowJob job(options);
  MapFn map_fn = [before](size_t i, const EmitFn& emit) {
    if (before) before(i);
    std::string one;
    PutVarint(&one, 1);
    for (const std::string& word : PolicyInputs()[i]) emit(word, one);
  };
  ChainReduceFn count = [](int, std::string_view key,
                           std::vector<std::string_view>& values,
                           const EmitFn& emit) {
    std::string value;
    PutVarint(&value, values.size());
    emit(key, value);
  };
  job.RunRound(PolicyInputs().size(), map_fn, nullptr, count);
  return {job.TakeRecords(), job.round_metrics().front()};
}

TEST(ProcFailurePolicyTest, KilledWorkerIsReExecutedWithIdenticalResults) {
  // A pool of exactly one worker, so the kill leaves it empty: the round
  // can only finish if the coordinator respawns a replacement (with
  // backoff) and re-executes the task on it.
  ChainedDataflowOptions options;
  options.num_map_workers = 1;
  options.num_reduce_workers = 1;
  auto [local_records, local_metrics] = RunPolicyRound(options);

  // The first process to claim the lock file SIGKILLs itself mid-map,
  // before anything is committed; the re-executed attempt finds the file
  // and proceeds. The coordinator must discard the dead worker's staged
  // segments and deliver byte-identical results and raw metrics.
  testing::ScopedTempDir dir;
  std::string lock = dir.path() + "/killed-once";
  options.backend = DataflowBackend::kProc;
  auto kill_once = [lock](size_t i) {
    if (i != 0) return;
    int fd = ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      ::close(fd);
      ::raise(SIGKILL);
    }
  };
  auto [proc_records, proc_metrics] = RunPolicyRound(options, kill_once);
  // The kill must actually have fired (and the temp dir must end up empty).
  ASSERT_EQ(::unlink(lock.c_str()), 0);

  EXPECT_EQ(local_records, proc_records);
  ExpectSameRawMetrics(local_metrics, proc_metrics);
  EXPECT_GE(proc_metrics.proc_task_retries, 1u);
  EXPECT_GE(proc_metrics.proc_workers_respawned, 1u);
}

TEST(ProcFailurePolicyTest, CrashingTaskFailsAfterExactlyMaxAttempts) {
  ChainedDataflowOptions options;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  options.backend = DataflowBackend::kProc;
  options.proc_max_task_attempts = 2;
  // Map task 0 (the shard owning input 0) dies on every attempt: the round
  // must fail with the typed error naming the phase, task, and the exact
  // attempt count — no infinite retry, no generic failure.
  auto crash = [](size_t i) {
    if (i == 0) ::raise(SIGKILL);
  };
  try {
    RunPolicyRound(options, crash);
    FAIL() << "expected ProcTaskFailedError";
  } catch (const ProcTaskFailedError& e) {
    EXPECT_EQ(e.phase(), "map");
    EXPECT_EQ(e.task(), 0);
    EXPECT_EQ(e.attempts(), 2);
    EXPECT_NE(std::string(e.what()).find("map task 0 failed after 2 attempts"),
              std::string::npos)
        << e.what();
  }
}

TEST(ProcFailurePolicyTest, HeartbeatsKeepSlowWorkersAlive) {
  ChainedDataflowOptions options;
  options.num_map_workers = 1;
  options.num_reduce_workers = 1;
  auto [local_records, local_metrics] = RunPolicyRound(options);

  // Every input takes ~40 ms, so the whole map task (8 inputs) far exceeds
  // the 150 ms stall timeout — but per-input progress drives kPong
  // heartbeats, so the coordinator must classify the worker as slow, not
  // hung: zero kills, zero retries, identical results.
  options.backend = DataflowBackend::kProc;
  options.proc_worker_timeout_ms = 150;
  auto slow = [](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  };
  auto [proc_records, proc_metrics] = RunPolicyRound(options, slow);

  EXPECT_EQ(local_records, proc_records);
  ExpectSameRawMetrics(local_metrics, proc_metrics);
  EXPECT_EQ(proc_metrics.proc_worker_kills, 0u);
  EXPECT_EQ(proc_metrics.proc_task_retries, 0u);
}

TEST(ProcFailurePolicyTest, HungTaskIsKilledAndExhaustsItsAttempts) {
  ChainedDataflowOptions options;
  options.num_map_workers = 2;
  options.num_reduce_workers = 1;
  options.backend = DataflowBackend::kProc;
  options.proc_worker_timeout_ms = 120;
  options.proc_max_task_attempts = 2;
  // Input 0 hangs without ever completing an input, so its worker's
  // progress-gated heartbeat stays silent: the coordinator must SIGKILL it
  // as hung (not wait out the sleep), retry, and fail typed after the
  // second stall.
  auto hang = [](size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::seconds(30));
  };
  try {
    RunPolicyRound(options, hang);
    FAIL() << "expected ProcTaskFailedError";
  } catch (const ProcTaskFailedError& e) {
    EXPECT_EQ(e.phase(), "map");
    EXPECT_EQ(e.task(), 0);
    EXPECT_EQ(e.attempts(), 2);
    EXPECT_NE(e.last_failure().find("no progress"), std::string::npos)
        << e.last_failure();
  }
}

TEST(ProcBackendTest, SegmentChunkingRoundTripsWithLoweredCap) {
  ChainedDataflowOptions options;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  auto [local_records, local_metrics] = RunPolicyRound(options);

  // Lower the chunk threshold (normally just under the 1 GiB frame cap) to
  // 16 bytes so ordinary word-count segments must be split into kSegmentPart
  // continuation frames — in both directions: map→coordinator shipping and
  // coordinator→reducer replay.
  ASSERT_EQ(::setenv("DSEQ_PROC_TEST_CHUNK_BYTES", "16", 1), 0);
  options.backend = DataflowBackend::kProc;
  auto [proc_records, proc_metrics] = RunPolicyRound(options);
  ::unsetenv("DSEQ_PROC_TEST_CHUNK_BYTES");

  EXPECT_EQ(local_records, proc_records);
  ExpectSameRawMetrics(local_metrics, proc_metrics);
  EXPECT_GT(proc_metrics.proc_segment_chunks, 0u);
}

TEST(ProcBackendTest, LargeTailsAreParkedInSpillFilesAtTheCoordinator) {
  ChainedDataflowOptions options;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  auto [local_records, local_metrics] = RunPolicyRound(options);

  // With the parking threshold floored at one byte, every staged tail goes
  // to a coordinator-side spill file instead of resident memory. Results
  // and raw metrics are unchanged, and the temp dir must be empty again by
  // destruction (ScopedTempDir asserts it).
  testing::ScopedTempDir dir;
  options.backend = DataflowBackend::kProc;
  options.spill_dir = dir.path();
  options.proc_tail_park_bytes = 1;
  auto [proc_records, proc_metrics] = RunPolicyRound(options);

  EXPECT_EQ(local_records, proc_records);
  ExpectSameRawMetrics(local_metrics, proc_metrics);
  EXPECT_GT(proc_metrics.proc_parked_tails, 0u);
}

TEST(ProcBackendTest, RecountCacheCountersMatchAcrossBackends) {
  SequenceDatabase db = testing::RandomDatabase(4800, 7, 50, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  DSeqRecountOptions options;
  options.sigma = 2;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  ChainedDistributedResult local =
      MineDSeqRecount(db.sequences, fst, db.dict, options);
  options.backend = DataflowBackend::kProc;
  ChainedDistributedResult proc =
      MineDSeqRecount(db.sequences, fst, db.dict, options);

  EXPECT_EQ(local.patterns, proc.patterns);
  // Every database read happens exactly once per (round, index) regardless
  // of backend, so the total touch count matches — even though the round-1
  // cache does not survive the fork boundary, which only shifts reads from
  // the hit column to the storage column.
  EXPECT_GT(local.input_cache_hits, 0u);
  EXPECT_EQ(local.input_storage_reads + local.input_cache_hits,
            proc.input_storage_reads + proc.input_cache_hits);
  // Proc-side reads happen inside forked children and are only visible via
  // the kMapDone report: a nonzero aggregate pins the wire path, while the
  // local backend counts on the CachedDatabase instance alone.
  EXPECT_GT(proc.aggregate.input_storage_reads, 0u);
  EXPECT_EQ(local.aggregate.input_storage_reads +
                local.aggregate.input_cache_hits,
            0u);
}

TEST(ProcBackendTest, ChainedMinersMatchAcrossBackends) {
  SequenceDatabase db = testing::RandomDatabase(4700, 7, 60, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);

  auto expect_same = [](const ChainedDistributedResult& local,
                        const ChainedDistributedResult& proc,
                        const char* name) {
    EXPECT_EQ(local.patterns, proc.patterns) << name;
    ASSERT_EQ(local.round_metrics.size(), proc.round_metrics.size()) << name;
    for (size_t r = 0; r < local.round_metrics.size(); ++r) {
      SCOPED_TRACE(std::string(name) + " round " + std::to_string(r));
      ExpectSameRawMetrics(local.round_metrics[r], proc.round_metrics[r]);
    }
  };

  {
    // Two-round recount chain (collect-and-broadcast between rounds).
    DSeqRecountOptions options;
    options.sigma = 2;
    options.num_map_workers = 3;
    options.num_reduce_workers = 3;
    ChainedDistributedResult local =
        MineDSeqRecount(db.sequences, fst, db.dict, options);
    options.backend = DataflowBackend::kProc;
    ChainedDistributedResult proc =
        MineDSeqRecount(db.sequences, fst, db.dict, options);
    expect_same(local, proc, "recount");
  }
  {
    // Balanced run: plan-driven partitioner, split pivots reconciled in an
    // extra round — both the 'F'/'S'-tagged boundary channel and the
    // reconcile shuffle must survive the process hop.
    DSeqBalanceOptions options;
    options.sigma = 2;
    options.num_map_workers = 3;
    options.num_reduce_workers = 3;
    options.plan.split_factor = 0.5;  // force splits
    ChainedDistributedResult local =
        MineDSeqBalanced(db.sequences, fst, db.dict, options);
    options.backend = DataflowBackend::kProc;
    ChainedDistributedResult proc =
        MineDSeqBalanced(db.sequences, fst, db.dict, options);
    expect_same(local, proc, "balanced");
  }
  {
    // Multi-round prefix growth: each round's extensions re-shuffle.
    PrefixSpanOptions options;
    options.sigma = 2;
    options.lambda = 4;
    options.num_map_workers = 2;
    options.num_reduce_workers = 2;
    ChainedDistributedResult local =
        MineChainedPrefixSpan(db.sequences, db.dict, options);
    options.backend = DataflowBackend::kProc;
    ChainedDistributedResult proc =
        MineChainedPrefixSpan(db.sequences, db.dict, options);
    EXPECT_GT(local.num_rounds(), 1u);
    expect_same(local, proc, "prefix-span-chained");
  }
}

TEST(ProcBackendTest, DataflowJobRoundsMatchAcrossBackends) {
  // Engine-level equivalence without any miner on top: a word-count round
  // followed by a chained re-shuffle round, records compared byte-for-byte.
  std::vector<std::vector<std::string>> inputs = {
      {"b", "a", "b"}, {"c", "c", "a"}, {"a"}, {"b", "d"},
      {"d", "a", "c"}, {"e"},           {"a", "e"},
  };
  auto run = [&](DataflowBackend backend) {
    ChainedDataflowOptions options;
    options.num_map_workers = 3;
    options.num_reduce_workers = 2;
    options.backend = backend;
    DataflowJob job(options);
    MapFn map_fn = [&](size_t i, const EmitFn& emit) {
      std::string one;
      PutVarint(&one, 1);
      for (const std::string& word : inputs[i]) emit(word, one);
    };
    ChainReduceFn count = [](int, std::string_view key,
                             std::vector<std::string_view>& values,
                             const EmitFn& emit) {
      std::string value;
      PutVarint(&value, values.size());
      emit(key, value);
    };
    job.RunRound(inputs.size(), map_fn, nullptr, count);
    // Round 2: re-key every count under one bucket and sum it.
    RecordMapFn rekey = [](size_t, const Record& record, const EmitFn& emit) {
      emit("total:" + record.key, record.value);
    };
    ChainReduceFn sum = [](int, std::string_view key,
                           std::vector<std::string_view>& values,
                           const EmitFn& emit) {
      uint64_t total = 0;
      for (std::string_view v : values) {
        size_t pos = 0;
        uint64_t c = 0;
        ASSERT_TRUE(GetVarint(v, &pos, &c));
        total += c;
      }
      std::string value;
      PutVarint(&value, total);
      emit(key, value);
    };
    job.RunChainedRound(rekey, MakeSumCombiner, sum);
    return std::make_pair(job.TakeRecords(), job.round_metrics());
  };

  auto [local_records, local_metrics] = run(DataflowBackend::kLocal);
  auto [proc_records, proc_metrics] = run(DataflowBackend::kProc);
  EXPECT_EQ(local_records, proc_records);
  ASSERT_EQ(local_metrics.size(), proc_metrics.size());
  for (size_t r = 0; r < local_metrics.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    ExpectSameRawMetrics(local_metrics[r], proc_metrics[r]);
  }
}

TEST(ProcBackendTest, RunMapReduceRejectsProcBackend) {
  DataflowOptions options;
  options.backend = DataflowBackend::kProc;
  MapFn map_fn = [](size_t, const EmitFn&) {};
  ReduceFn reduce_fn = [](int, std::string_view,
                          std::vector<std::string_view>&) {};
  EXPECT_THROW(RunMapReduce(1, map_fn, nullptr, reduce_fn, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace dseq
