// Multi-process backend tests: the RPC frame codec, the backend-equivalence
// matrix (every distributed miner under --backend proc must be
// byte-identical to the local backend and the brute-force oracle, with
// identical raw shuffle metrics), the out-of-core and compressed configs,
// and fault tolerance (a worker killed mid-round must not change results).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "src/baselines/prefix_span.h"
#include "src/dataflow/chained.h"
#include "src/dataflow/engine.h"
#include "src/dist/dcand_miner.h"
#include "src/dist/dseq_miner.h"
#include "src/dist/naive.h"
#include "src/fst/compiler.h"
#include "src/rpc/frame.h"
#include "src/util/varint.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

// --- Frame codec ------------------------------------------------------------

TEST(FrameCodecTest, RoundTripsFramesFedByteByByte) {
  std::string wire;
  rpc::AppendFrame(&wire, rpc::MsgType::kHello, "w0");
  rpc::AppendFrame(&wire, rpc::MsgType::kSegment, std::string(300, 'x'));
  rpc::AppendFrame(&wire, rpc::MsgType::kShutdown, "");

  // One byte at a time: the decoder must report kNeedMore until a frame
  // completes, and must never mis-frame across the Append boundaries.
  rpc::FrameDecoder decoder;
  std::vector<std::pair<rpc::MsgType, std::string>> frames;
  for (char byte : wire) {
    decoder.Append(std::string_view(&byte, 1));
    rpc::MsgType type;
    std::string_view payload;
    while (decoder.Next(&type, &payload) == rpc::FrameDecoder::Status::kFrame) {
      frames.emplace_back(type, std::string(payload));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].first, rpc::MsgType::kHello);
  EXPECT_EQ(frames[0].second, "w0");
  EXPECT_EQ(frames[1].first, rpc::MsgType::kSegment);
  EXPECT_EQ(frames[1].second, std::string(300, 'x'));
  EXPECT_EQ(frames[2].first, rpc::MsgType::kShutdown);
  EXPECT_EQ(frames[2].second, "");
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameCodecTest, OversizePayloadIsRejectedFromTheLengthPrefix) {
  // The length prefix alone must condemn the frame — no payload bytes are
  // ever buffered, so a hostile peer cannot make the coordinator allocate.
  std::string wire;
  PutVarint(&wire, static_cast<uint64_t>(rpc::MsgType::kSegment));
  PutVarint(&wire, rpc::kMaxFramePayloadBytes + 1);
  rpc::FrameDecoder decoder;
  decoder.Append(wire);
  rpc::MsgType type;
  std::string_view payload;
  EXPECT_EQ(decoder.Next(&type, &payload),
            rpc::FrameDecoder::Status::kBadFrame);
  // A bad stream is dead: more bytes cannot resurrect it.
  decoder.Append("anything");
  EXPECT_EQ(decoder.Next(&type, &payload),
            rpc::FrameDecoder::Status::kBadFrame);
}

TEST(FrameCodecTest, UnknownMessageTypeIsRejected) {
  std::string wire;
  PutVarint(&wire, 99);  // no such MsgType
  PutVarint(&wire, 0);
  rpc::FrameDecoder decoder;
  decoder.Append(wire);
  rpc::MsgType type;
  std::string_view payload;
  EXPECT_EQ(decoder.Next(&type, &payload),
            rpc::FrameDecoder::Status::kBadFrame);
}

TEST(FrameCodecTest, TruncatedFrameReportsNeedMore) {
  std::string wire;
  rpc::AppendFrame(&wire, rpc::MsgType::kMapTask, "payload");
  rpc::FrameDecoder decoder;
  decoder.Append(std::string_view(wire).substr(0, wire.size() - 1));
  rpc::MsgType type;
  std::string_view payload;
  EXPECT_EQ(decoder.Next(&type, &payload),
            rpc::FrameDecoder::Status::kNeedMore);
  decoder.Append(std::string_view(wire).substr(wire.size() - 1));
  ASSERT_EQ(decoder.Next(&type, &payload), rpc::FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "payload");
}

// --- Backend equivalence ----------------------------------------------------

// The determinism contract of src/rpc/proc_backend.h: raw shuffle metrics
// are identical across backends; spill_* and wall times are not compared.
void ExpectSameRawMetrics(const DataflowMetrics& local,
                          const DataflowMetrics& proc) {
  EXPECT_EQ(local.shuffle_bytes, proc.shuffle_bytes);
  EXPECT_EQ(local.shuffle_records, proc.shuffle_records);
  EXPECT_EQ(local.map_output_records, proc.map_output_records);
  EXPECT_EQ(local.shuffle_compressed_bytes, proc.shuffle_compressed_bytes);
  EXPECT_EQ(local.reducer_bytes, proc.reducer_bytes);
}

TEST(ProcBackendTest, MinersMatchLocalAndBruteForceAcrossWorkerCounts) {
  SequenceDatabase db = testing::RandomDatabase(4200, 7, 50, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  const uint64_t sigma = 2;
  MiningResult expected =
      testing::BruteForceMine(db.sequences, fst, db.dict, sigma);

  testing::ForEachWorkerCount(
      [&](int workers) {
        auto run = [&](auto& options, auto miner, const char* name) {
          options.sigma = sigma;
          options.num_map_workers = workers;
          options.num_reduce_workers = workers;
          options.backend = DataflowBackend::kLocal;
          DistributedResult local = miner(db.sequences, fst, db.dict, options);
          options.backend = DataflowBackend::kProc;
          DistributedResult proc = miner(db.sequences, fst, db.dict, options);
          EXPECT_EQ(local.patterns, expected) << name;
          EXPECT_EQ(proc.patterns, expected) << name << " (proc)";
          ExpectSameRawMetrics(local.metrics, proc.metrics);
        };
        NaiveOptions naive;
        run(naive,
            [](auto&&... a) { return MineNaive(a...); }, "NAIVE");
        DSeqOptions dseq;
        run(dseq,
            [](auto&&... a) { return MineDSeq(a...); }, "D-SEQ");
        DCandOptions dcand;
        run(dcand,
            [](auto&&... a) { return MineDCand(a...); }, "D-CAND");
      },
      {2, 4});
}

TEST(ProcBackendTest, CompressedShuffleIsIdenticalAcrossBackends) {
  SequenceDatabase db = testing::RandomDatabase(4300, 7, 60, 8);
  Fst fst = CompileFst(".*(i0)[(.^).*]*(i1).*", db.dict);
  DSeqOptions options;
  options.sigma = 2;
  options.num_map_workers = 3;
  options.num_reduce_workers = 3;
  options.compress_shuffle = true;
  DistributedResult local = MineDSeq(db.sequences, fst, db.dict, options);
  options.backend = DataflowBackend::kProc;
  DistributedResult proc = MineDSeq(db.sequences, fst, db.dict, options);
  EXPECT_EQ(local.patterns, proc.patterns);
  ASSERT_GT(local.metrics.shuffle_compressed_bytes, 0u);
  ExpectSameRawMetrics(local.metrics, proc.metrics);
}

TEST(ProcBackendTest, BudgetedSpillingRunIsIdenticalAcrossBackends) {
  SequenceDatabase db = testing::RandomDatabase(4400, 7, 80, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  const uint64_t sigma = 2;
  MiningResult expected =
      testing::BruteForceMine(db.sequences, fst, db.dict, sigma);
  testing::ScopedTempDir spill_dir;

  DSeqOptions options;
  options.sigma = sigma;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  // Budget well below the measured shuffle volume so both backends must
  // spill (the same scaling the local out-of-core acceptance test uses).
  DistributedResult unbudgeted = MineDSeq(db.sequences, fst, db.dict, options);
  ASSERT_GT(unbudgeted.metrics.shuffle_bytes, 0u);
  options.memory_budget_bytes = testing::SpillTestBudget(
      std::max<uint64_t>(unbudgeted.metrics.shuffle_bytes / 4, 64));
  options.spill_dir = spill_dir.path();
  options.spill_merge_fan_in = 4;
  DistributedResult local = MineDSeq(db.sequences, fst, db.dict, options);
  options.backend = DataflowBackend::kProc;
  DistributedResult proc = MineDSeq(db.sequences, fst, db.dict, options);

  EXPECT_EQ(local.patterns, expected);
  EXPECT_EQ(proc.patterns, expected);
  ExpectSameRawMetrics(local.metrics, proc.metrics);
  // The budget must actually bite in the worker processes — otherwise this
  // test exercises nothing — and the workers' spill files must all be gone
  // (ScopedTempDir verifies the directory is empty on destruction).
  EXPECT_GT(proc.metrics.spill_files, 0u);
}

TEST(ProcBackendTest, BudgetWithoutSpillDirThrowsAcrossTheWire) {
  // A worker that overflows its memory budget with nowhere to spill must
  // surface the same typed error the local backend throws, carried through
  // the kError frame and rethrown by the coordinator.
  SequenceDatabase db = testing::RandomDatabase(4500, 7, 60, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  DSeqOptions options;
  options.sigma = 2;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  options.memory_budget_bytes = 64;
  options.backend = DataflowBackend::kProc;
  EXPECT_THROW(MineDSeq(db.sequences, fst, db.dict, options),
               ShuffleOverflowError);
}

TEST(ProcBackendTest, KilledWorkerIsReExecutedWithIdenticalResults) {
  SequenceDatabase db = testing::RandomDatabase(4600, 7, 60, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  DSeqOptions options;
  options.sigma = 2;
  options.num_map_workers = 4;
  options.num_reduce_workers = 4;
  DistributedResult local = MineDSeq(db.sequences, fst, db.dict, options);

  // Worker 1 SIGKILLs itself after shipping its first map task's segments
  // but before committing them (kMapDone): the coordinator must discard the
  // staged segments and re-execute the task on a surviving worker, with
  // byte-identical results and metrics — re-executed output commits once.
  ASSERT_EQ(::setenv("DSEQ_PROC_TEST_KILL_WORKER", "1", 1), 0);
  options.backend = DataflowBackend::kProc;
  DistributedResult proc = MineDSeq(db.sequences, fst, db.dict, options);
  ::unsetenv("DSEQ_PROC_TEST_KILL_WORKER");

  EXPECT_EQ(local.patterns, proc.patterns);
  ExpectSameRawMetrics(local.metrics, proc.metrics);
}

TEST(ProcBackendTest, ChainedMinersMatchAcrossBackends) {
  SequenceDatabase db = testing::RandomDatabase(4700, 7, 60, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);

  auto expect_same = [](const ChainedDistributedResult& local,
                        const ChainedDistributedResult& proc,
                        const char* name) {
    EXPECT_EQ(local.patterns, proc.patterns) << name;
    ASSERT_EQ(local.round_metrics.size(), proc.round_metrics.size()) << name;
    for (size_t r = 0; r < local.round_metrics.size(); ++r) {
      SCOPED_TRACE(std::string(name) + " round " + std::to_string(r));
      ExpectSameRawMetrics(local.round_metrics[r], proc.round_metrics[r]);
    }
  };

  {
    // Two-round recount chain (collect-and-broadcast between rounds).
    DSeqRecountOptions options;
    options.sigma = 2;
    options.num_map_workers = 3;
    options.num_reduce_workers = 3;
    ChainedDistributedResult local =
        MineDSeqRecount(db.sequences, fst, db.dict, options);
    options.backend = DataflowBackend::kProc;
    ChainedDistributedResult proc =
        MineDSeqRecount(db.sequences, fst, db.dict, options);
    expect_same(local, proc, "recount");
  }
  {
    // Balanced run: plan-driven partitioner, split pivots reconciled in an
    // extra round — both the 'F'/'S'-tagged boundary channel and the
    // reconcile shuffle must survive the process hop.
    DSeqBalanceOptions options;
    options.sigma = 2;
    options.num_map_workers = 3;
    options.num_reduce_workers = 3;
    options.plan.split_factor = 0.5;  // force splits
    ChainedDistributedResult local =
        MineDSeqBalanced(db.sequences, fst, db.dict, options);
    options.backend = DataflowBackend::kProc;
    ChainedDistributedResult proc =
        MineDSeqBalanced(db.sequences, fst, db.dict, options);
    expect_same(local, proc, "balanced");
  }
  {
    // Multi-round prefix growth: each round's extensions re-shuffle.
    PrefixSpanOptions options;
    options.sigma = 2;
    options.lambda = 4;
    options.num_map_workers = 2;
    options.num_reduce_workers = 2;
    ChainedDistributedResult local =
        MineChainedPrefixSpan(db.sequences, db.dict, options);
    options.backend = DataflowBackend::kProc;
    ChainedDistributedResult proc =
        MineChainedPrefixSpan(db.sequences, db.dict, options);
    EXPECT_GT(local.num_rounds(), 1u);
    expect_same(local, proc, "prefix-span-chained");
  }
}

TEST(ProcBackendTest, DataflowJobRoundsMatchAcrossBackends) {
  // Engine-level equivalence without any miner on top: a word-count round
  // followed by a chained re-shuffle round, records compared byte-for-byte.
  std::vector<std::vector<std::string>> inputs = {
      {"b", "a", "b"}, {"c", "c", "a"}, {"a"}, {"b", "d"},
      {"d", "a", "c"}, {"e"},           {"a", "e"},
  };
  auto run = [&](DataflowBackend backend) {
    ChainedDataflowOptions options;
    options.num_map_workers = 3;
    options.num_reduce_workers = 2;
    options.backend = backend;
    DataflowJob job(options);
    MapFn map_fn = [&](size_t i, const EmitFn& emit) {
      std::string one;
      PutVarint(&one, 1);
      for (const std::string& word : inputs[i]) emit(word, one);
    };
    ChainReduceFn count = [](int, std::string_view key,
                             std::vector<std::string_view>& values,
                             const EmitFn& emit) {
      std::string value;
      PutVarint(&value, values.size());
      emit(key, value);
    };
    job.RunRound(inputs.size(), map_fn, nullptr, count);
    // Round 2: re-key every count under one bucket and sum it.
    RecordMapFn rekey = [](size_t, const Record& record, const EmitFn& emit) {
      emit("total:" + record.key, record.value);
    };
    ChainReduceFn sum = [](int, std::string_view key,
                           std::vector<std::string_view>& values,
                           const EmitFn& emit) {
      uint64_t total = 0;
      for (std::string_view v : values) {
        size_t pos = 0;
        uint64_t c = 0;
        ASSERT_TRUE(GetVarint(v, &pos, &c));
        total += c;
      }
      std::string value;
      PutVarint(&value, total);
      emit(key, value);
    };
    job.RunChainedRound(rekey, MakeSumCombiner, sum);
    return std::make_pair(job.TakeRecords(), job.round_metrics());
  };

  auto [local_records, local_metrics] = run(DataflowBackend::kLocal);
  auto [proc_records, proc_metrics] = run(DataflowBackend::kProc);
  EXPECT_EQ(local_records, proc_records);
  ASSERT_EQ(local_metrics.size(), proc_metrics.size());
  for (size_t r = 0; r < local_metrics.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    ExpectSameRawMetrics(local_metrics[r], proc_metrics[r]);
  }
}

TEST(ProcBackendTest, RunMapReduceRejectsProcBackend) {
  DataflowOptions options;
  options.backend = DataflowBackend::kProc;
  MapFn map_fn = [](size_t, const EmitFn&) {};
  ReduceFn reduce_fn = [](int, std::string_view,
                          std::vector<std::string_view>&) {};
  EXPECT_THROW(RunMapReduce(1, map_fn, nullptr, reduce_fn, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace dseq
