// Fuzzes the varint layer (src/util/varint.h) — the innermost decoder of
// every shuffle record, spill block, and serialized NFA. Properties:
// decoding never reads past the buffer, always makes progress, and decoded
// values re-encode to bytes that decode back to the same value.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/dict/sequence.h"
#include "src/util/varint.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // Walk the buffer as a varint stream.
  size_t pos = 0;
  while (pos < input.size()) {
    size_t before = pos;
    uint64_t value = 0;
    if (!dseq::GetVarint(input, &pos, &value)) break;
    if (pos <= before || pos > input.size()) __builtin_trap();
    // Canonical re-encode must round-trip to the same value.
    std::string reencoded;
    dseq::PutVarint(&reencoded, value);
    size_t rpos = 0;
    uint64_t decoded = 0;
    if (!dseq::GetVarint(reencoded, &rpos, &decoded) ||
        rpos != reencoded.size() || decoded != value) {
      __builtin_trap();
    }
  }

  // The same bytes as a delta-coded sequence stream.
  pos = 0;
  dseq::Sequence seq;
  while (pos < input.size()) {
    size_t before = pos;
    if (!dseq::GetSequence(input, &pos, &seq)) break;
    if (pos <= before || pos > input.size()) __builtin_trap();
    std::string reencoded;
    dseq::PutSequence(&reencoded, seq);
    size_t rpos = 0;
    dseq::Sequence decoded;
    if (!dseq::GetSequence(reencoded, &rpos, &decoded) ||
        rpos != reencoded.size() || decoded != seq) {
      __builtin_trap();
    }
  }
  return 0;
}
