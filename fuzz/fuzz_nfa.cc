// Fuzzes NFA deserialization (src/nfa/serializer.h). Serialized NFAs cross
// the shuffle, so DeserializeNfa must reject every malformed byte string
// with NfaParseError — never crash, hang, or over-allocate. Inputs that do
// parse must normalize: serialize(parse(x)) is a fixed point of
// parse∘serialize.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/nfa/output_nfa.h"
#include "src/nfa/serializer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  dseq::OutputNfa nfa;
  try {
    nfa = dseq::DeserializeNfa(input);
  } catch (const dseq::NfaParseError&) {
    return 0;  // malformed input correctly rejected
  }
  // Parsed NFAs re-serialize deterministically: one round of normalization
  // must reach a fixed point, or shuffle aggregation of identical NFAs
  // breaks.
  std::string first = dseq::SerializeNfa(nfa);
  std::string second = dseq::SerializeNfa(dseq::DeserializeNfa(first));
  if (first != second) __builtin_trap();
  return 0;
}
