// Corpus-replay driver used when the toolchain has no libFuzzer (GCC
// builds): runs LLVMFuzzerTestOneInput over every file passed on the
// command line (directories are walked one level deep — the layout of the
// checked-in fuzz/corpus/<target>/ seed sets). No fuzzing happens here; the
// targets still execute under whatever sanitizers the build enables, so the
// corpus doubles as a regression suite. Clang builds link real libFuzzer
// instead (see the fuzzer section of CMakeLists.txt) and get the same
// behavior from `-runs=0 <corpus dir>`.
#include <dirent.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

// Collects `path` if it is a file, or its immediate children if it is a
// directory.
void CollectInputs(const std::string& path, std::vector<std::string>* files) {
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    files->push_back(path);
    return;
  }
  while (dirent* entry = readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::string child = path + "/" + name;
    if (opendir(child.c_str()) != nullptr) continue;  // skip subdirectories
    files->push_back(child);
  }
  closedir(dir);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) CollectInputs(argv[i], &files);
  size_t executed = 0;
  for (const std::string& file : files) {
    std::string bytes;
    if (!ReadFile(file, &bytes)) {
      std::fprintf(stderr, "cannot read corpus input %s\n", file.c_str());
      return 1;
    }
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++executed;
  }
  std::printf("replayed %zu corpus inputs\n", executed);
  if (executed == 0) {
    std::fprintf(stderr, "no corpus inputs found\n");
    return 1;
  }
  return 0;
}
