// Fuzzes the LZ block codec (src/util/block_codec.h). Two surfaces, chosen
// by the first input byte:
//   even — the remaining bytes are a hostile *block*: DecompressBlock must
//          return false or produce bytes that re-compress losslessly, and
//          never crash or over-allocate;
//   odd  — the remaining bytes are *raw* data: CompressBlock ∘
//          DecompressBlock must be the identity.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/block_codec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  std::string_view payload(reinterpret_cast<const char*>(data + 1), size - 1);
  if (data[0] % 2 == 0) {
    std::string raw;
    if (dseq::DecompressBlock(payload, &raw)) {
      // Whatever decoded must survive a clean round trip.
      std::string recoded = dseq::CompressBlock(raw);
      std::string raw2;
      if (!dseq::DecompressBlock(recoded, &raw2) || raw2 != raw) {
        __builtin_trap();
      }
    }
  } else {
    std::string block = dseq::CompressBlock(payload);
    std::string raw;
    if (!dseq::DecompressBlock(block, &raw) || raw != payload) {
      __builtin_trap();
    }
  }
  return 0;
}
