// Fuzzes SpillRunReader (src/spill/spill_file.h) over corrupted run files.
// Spill files never cross a trust boundary, but disk corruption must fail
// with the documented std::runtime_error — never a crash, hang, or silent
// short read. The first input byte selects the compressed flag; the rest
// becomes the on-disk run image.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unistd.h>

#include "src/spill/spill_file.h"

namespace {

// One scratch directory per process; SpillFile removes each backing file,
// the directory itself goes at exit.
const std::string& ScratchDir() {
  static const std::string* dir = [] {
    static char templ[] = "/tmp/dseq_fuzz_spill_XXXXXX";
    char* made = mkdtemp(templ);
    if (made == nullptr) std::abort();
    std::atexit([] { rmdir(templ); });
    return new std::string(made);
  }();
  return *dir;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const bool compressed = data[0] % 2 != 0;
  dseq::SpillFile file = dseq::SpillFile::Create(ScratchDir());
  if (size > 1) file.Append(data + 1, size - 1);
  file.FinishWrite();

  try {
    dseq::SpillRunReader reader(file, compressed);
    std::string_view key;
    std::string_view value;
    uint64_t records = 0;
    while (reader.Next(&key, &value)) {
      ++records;
      // A compressed block may legitimately decode to far more bytes than
      // it stores (LZ runs), so these bounds only hold for raw runs: frames
      // live inside the stored block, and every record costs >= 2 bytes.
      if (!compressed) {
        if (key.size() + value.size() > size) __builtin_trap();
        if (records > size) __builtin_trap();
      }
    }
  } catch (const std::runtime_error&) {
    // Corrupt run correctly rejected.
  }
  return 0;
}
