// Fuzzes the RPC frame decoder (src/rpc/frame.h) over arbitrary byte
// streams fed in adversarially small chunks. The decoder sits on the
// coordinator's socket path, so hostile or corrupted bytes must never
// crash, hang, over-read, or allocate unbounded memory — malformed input
// ends in the sticky kBadFrame state, nothing else.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/rpc/frame.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // The first byte picks the Append chunk size, so the corpus explores
  // reassembly boundaries (1-byte trickle up to one big write).
  const size_t chunk = static_cast<size_t>(data[0] % 64) + 1;
  std::string_view stream(reinterpret_cast<const char*>(data + 1), size - 1);

  dseq::rpc::FrameDecoder decoder;
  size_t frames = 0;
  bool bad = false;
  for (size_t off = 0; off < stream.size(); off += chunk) {
    decoder.Append(stream.substr(off, chunk));
    dseq::rpc::MsgType type;
    std::string_view payload;
    for (;;) {
      auto status = decoder.Next(&type, &payload);
      if (status == dseq::rpc::FrameDecoder::Status::kFrame) {
        // Frames never claim more than the cap, and the payload view must
        // lie within what was appended so far.
        if (payload.size() > dseq::rpc::kMaxFramePayloadBytes)
          __builtin_trap();
        if (bad) __builtin_trap();  // no frames after a bad one
        ++frames;
        continue;
      }
      if (status == dseq::rpc::FrameDecoder::Status::kBadFrame) bad = true;
      break;
    }
    // Every decoded frame consumed at least 2 bytes (type + size prefix).
    if (frames > stream.size() / 2 + 1) __builtin_trap();
  }
  return 0;
}
