// Regenerates the checked-in seed corpora under fuzz/corpus/<target>/.
//
// Seeds are produced by the real encoders (PutVarint/PutSequence,
// SerializeNfa, CompressBlock, SpillWriter), so every fuzz target starts
// from well-formed inputs that reach deep into its decoder before the
// fuzzer begins mutating — plus a few deliberately malformed inputs that
// pin the rejection paths. Usage: make_fuzz_corpus <corpus root>.
#include <sys/stat.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/nfa/output_nfa.h"
#include "src/nfa/serializer.h"
#include "src/rpc/frame.h"
#include "src/spill/spill_file.h"
#include "src/util/block_codec.h"
#include "src/util/varint.h"

namespace {

std::string g_root;

void MakeDir(const std::string& path) {
  if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    std::perror(("mkdir " + path).c_str());
    std::exit(1);
  }
}

void WriteSeed(const std::string& target, const std::string& name,
               const std::string& bytes) {
  MakeDir(g_root + "/" + target);
  std::string path = g_root + "/" + target + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("%s (%zu bytes)\n", path.c_str(), bytes.size());
}

std::string Varint(uint64_t v) {
  std::string out;
  dseq::PutVarint(&out, v);
  return out;
}

void VarintSeeds() {
  WriteSeed("fuzz_varint", "single_small", Varint(5));
  WriteSeed("fuzz_varint", "single_max", Varint(~uint64_t{0}));
  WriteSeed("fuzz_varint", "stream",
            Varint(0) + Varint(127) + Varint(128) + Varint(300) +
                Varint(1u << 20));
  std::string seq;
  dseq::PutSequence(&seq, dseq::Sequence{3, 1, 4, 1, 5, 9, 2, 6});
  WriteSeed("fuzz_varint", "sequence", seq);
  WriteSeed("fuzz_varint", "sequence_then_varint", seq + Varint(42));
  // A ten-byte varint cut short: the truncation rejection path.
  WriteSeed("fuzz_varint", "truncated", std::string(3, '\x80'));
}

void NfaSeeds() {
  using Labels = std::vector<dseq::Sequence>;
  {
    dseq::OutputNfa nfa;
    nfa.AddLabelString(Labels{{1}, {2}});
    nfa.Minimize();
    WriteSeed("fuzz_nfa", "chain", dseq::SerializeNfa(nfa));
  }
  {
    // Shared prefix + shared suffix: minimization produces a re-visited
    // target, exercising serializer rule 2 on the way in.
    dseq::OutputNfa nfa;
    nfa.AddLabelString(Labels{{1}, {2}, {5}});
    nfa.AddLabelString(Labels{{1}, {3}, {5}});
    nfa.AddLabelString(Labels{{1, 4}, {2}});
    nfa.Minimize();
    WriteSeed("fuzz_nfa", "dag", dseq::SerializeNfa(nfa));
  }
  {
    // Multi-item output sets (the hierarchy case).
    dseq::OutputNfa nfa;
    nfa.AddLabelString(Labels{{1, 2, 3}, {7}});
    nfa.AddLabelString(Labels{{1, 2, 3}});
    nfa.Minimize();
    WriteSeed("fuzz_nfa", "output_sets", dseq::SerializeNfa(nfa));
  }
  WriteSeed("fuzz_nfa", "malformed", "\xff\xff\xff");
}

void BlockCodecSeeds() {
  const std::string raw =
      "the quick brown fox jumps over the lazy dog -- the quick brown fox "
      "jumps again, and again, and again, and again";
  WriteSeed("fuzz_block_codec", "raw_text", "\x01" + raw);
  WriteSeed("fuzz_block_codec", "raw_runs",
            "\x01" + std::string(200, 'a') + std::string(100, 'b'));
  WriteSeed("fuzz_block_codec", "block_valid",
            std::string(1, '\0') + dseq::CompressBlock(raw));
  WriteSeed("fuzz_block_codec", "block_garbage",
            std::string(1, '\0') + "\x40garbage-after-big-length-prefix");
}

std::string SpillRunBytes(bool compress) {
  static char templ_storage[] = "/tmp/dseq_corpus_XXXXXX";
  static std::string dir = [] {
    char* made = mkdtemp(templ_storage);
    if (made == nullptr) {
      std::perror("mkdtemp");
      std::exit(1);
    }
    return std::string(made);
  }();
  std::string bytes;
  {
    dseq::SpillFile file = dseq::SpillFile::Create(dir);
    dseq::SpillWriter writer(&file, compress, /*stats=*/nullptr);
    writer.Append("apple", "1");
    writer.Append("banana", "22");
    writer.Append("cherry", std::string(64, 'x'));
    writer.Finish();
    std::ifstream in(file.path(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }  // SpillFile removes its backing file here
  return bytes;
}

void RpcFrameSeeds() {
  // fuzz_rpc_frame's first input byte selects the Append chunk size; the
  // seeds pair real AppendFrame output (chunk 1 = byte-by-byte trickle,
  // chunk 64 = bulk) with the rejection paths the decoder must pin.
  std::string stream;
  dseq::rpc::AppendFrame(&stream, dseq::rpc::MsgType::kHello, Varint(3));
  dseq::rpc::AppendFrame(&stream, dseq::rpc::MsgType::kMapTask,
                         Varint(0) + Varint(0) + Varint(25));
  dseq::rpc::AppendFrame(&stream, dseq::rpc::MsgType::kSegment,
                         Varint(0) + Varint(1) + Varint(1) + Varint(0) +
                             Varint(7) + "payload");
  dseq::rpc::AppendFrame(&stream, dseq::rpc::MsgType::kShutdown, "");
  WriteSeed("fuzz_rpc_frame", "stream_trickle", std::string(1, '\0') + stream);
  WriteSeed("fuzz_rpc_frame", "stream_bulk", std::string(1, '\x3f') + stream);
  // Length prefix over the frame cap: rejected before any buffering.
  WriteSeed("fuzz_rpc_frame", "oversize_length",
            std::string(1, '\x07') +
                Varint(static_cast<uint64_t>(dseq::rpc::MsgType::kSegment)) +
                Varint(dseq::rpc::kMaxFramePayloadBytes + 1));
  // No such message type.
  WriteSeed("fuzz_rpc_frame", "bad_type",
            std::string(1, '\x07') + Varint(99) + Varint(0));
  // A frame cut mid-payload: must stay kNeedMore, never a frame.
  std::string one_frame;
  dseq::rpc::AppendFrame(&one_frame, dseq::rpc::MsgType::kReduceTask,
                         std::string(40, 'r'));
  WriteSeed("fuzz_rpc_frame", "truncated",
            std::string(1, '\0') + one_frame.substr(0, one_frame.size() / 2));
}

void SpillRunSeeds() {
  std::string raw_run = SpillRunBytes(/*compress=*/false);
  std::string compressed_run = SpillRunBytes(/*compress=*/true);
  WriteSeed("fuzz_spill_run", "raw_run", std::string(1, '\0') + raw_run);
  WriteSeed("fuzz_spill_run", "compressed_run", "\x01" + compressed_run);
  // Truncated mid-block: the torn-write rejection path.
  WriteSeed("fuzz_spill_run", "truncated_run",
            std::string(1, '\0') + raw_run.substr(0, raw_run.size() / 2));
  // A run read with the wrong compression flag.
  WriteSeed("fuzz_spill_run", "flag_mismatch", "\x01" + raw_run);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus root>\n", argv[0]);
    return 1;
  }
  g_root = argv[1];
  MakeDir(g_root);
  VarintSeeds();
  NfaSeeds();
  BlockCodecSeeds();
  SpillRunSeeds();
  RpcFrameSeeds();
  return 0;
}
